"""The legacy ("old") device runtime — the paper's baseline.

Models the pre-co-design LLVM deviceRTL as the paper characterizes it:

* guarded conditional writes (Fig. 7a) instead of conditional pointers,
  so state writes never dominate the broadcasting barrier;
* *unaligned* barriers everywhere — the barrier-elimination pass
  (§IV-D) must leave them alone;
* eagerly initialized per-warp ICV records in shared memory, so the
  thread-state area is never all-zero and the field-sensitive zero
  deduction (§IV-B1) cannot apply;
* split, chunked worksharing with a barrier-bracketed dispatch per
  chunk instead of the combined ``noChunkImpl``;
* a single team-wide data-sharing stack, no assumption globals, no
  debug machinery.

Shared footprint: a 272B team context plus a 2048B data stack — the
~2.3KB the paper's Fig. 11 reports for "Old RT (Nightly)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import ArrayType, I8, I32, I64, PTR, PTR_GLOBAL, VOID
from repro.ir.values import GlobalVariable, Value
from repro.runtime.common import RuntimeBuilder
from repro.runtime.config import RuntimeConfig
from repro.runtime.state import (
    GV_OLD_DATA_STACK,
    GV_OLD_TEAM_CONTEXT,
    OLD_DATA_STACK_SIZE,
    OLD_TEAM_CONTEXT_SIZE,
)

# Byte offsets within the old team context blob.
OFF_EXEC_MODE = 0
OFF_LEVELS = 4
OFF_TEAM_SIZE = 8
OFF_DONE = 12
OFF_PARALLEL_FN = 16
OFF_PARALLEL_ARGS = 24
OFF_STACK_TOP = 32
OFF_WARP_RECORDS = 40
WARP_RECORD_SIZE = 8


def shared_stack_saturation(module):
    """Old-runtime counterpart of
    :func:`repro.runtime.libnew.memory.shared_stack_saturation`: the
    data stack is team-wide (stride 0), its top lives at a fixed byte
    offset inside the team-context blob, and pinning it to
    ``OLD_DATA_STACK_SIZE`` sends every ``__kmpc_alloc_shared_old``
    down the global-malloc fallback."""
    ctx = module.globals.get(GV_OLD_TEAM_CONTEXT)
    stack = module.globals.get(GV_OLD_DATA_STACK)
    if ctx is None or stack is None:
        return None
    return (GV_OLD_TEAM_CONTEXT, OFF_STACK_TOP, 0, OLD_DATA_STACK_SIZE)

#: Function names the old runtime provides.
OLD_RUNTIME_API = (
    "__kmpc_target_init_old",
    "__kmpc_target_deinit_old",
    "__kmpc_parallel_old",
    "__kmpc_distribute_parallel_for_old",
    "__kmpc_for_static_old",
    "__kmpc_distribute_static_old",
    "__kmpc_alloc_shared_old",
    "__kmpc_free_shared_old",
    "__kmpc_barrier_old",
    "omp_get_thread_num_old",
    "omp_get_num_threads_old",
    "omp_get_team_num_old",
    "omp_get_num_teams_old",
    "omp_get_level_old",
)

#: Overhead attribution for the trace layer (:mod:`repro.trace`):
#: same categories as the new runtime so traces compare across builds.
OLD_RT_OVERHEAD_CATEGORIES = {
    "__kmpc_target_init_old": "target_init",
    "__kmpc_target_deinit_old": "target_init",
    "__kmpc_parallel_old": "parallel_region",
    "__kmpc_distribute_parallel_for_old": "worksharing",
    "__kmpc_for_static_old": "worksharing",
    "__kmpc_distribute_static_old": "worksharing",
    "__kmpc_alloc_shared_old": "shared_stack",
    "__kmpc_free_shared_old": "shared_stack",
    "__kmpc_barrier_old": "sync",
    "omp_get_thread_num_old": "icv_query",
    "omp_get_num_threads_old": "icv_query",
    "omp_get_team_num_old": "icv_query",
    "omp_get_num_teams_old": "icv_query",
    "omp_get_level_old": "icv_query",
}


@dataclass
class OldRTGlobals:
    context: GlobalVariable
    data_stack: GlobalVariable


def _guarded_write_i32(
    b: IRBuilder, base: GlobalVariable, offset: int, value: Value, cond: Value
) -> None:
    """Fig. 7a: conditionally *executed* write (branchy broadcast)."""
    func = b.function
    write_block = func.add_block("gw.write", after=b.block)
    cont_block = func.add_block("gw.cont", after=write_block)
    b.cond_br(cond, write_block, cont_block)
    b.set_insert_point(write_block)
    b.store(value, b.ptradd(base, offset))
    b.br(cont_block)
    b.set_insert_point(cont_block)


def _warp_record_addr(b: IRBuilder, ctx: GlobalVariable) -> Value:
    tid = b.thread_id()
    warp = b.udiv(tid, b.i32(32), "warp")
    off = b.add(b.i32(OFF_WARP_RECORDS), b.mul(warp, b.i32(WARP_RECORD_SIZE)))
    return b.ptradd(ctx, b.sext(off, I64), "warp.rec")


def populate_old_runtime(module: Module, config: RuntimeConfig) -> OldRTGlobals:
    rb = RuntimeBuilder(module, config)
    ctx = rb.shared_global(GV_OLD_TEAM_CONTEXT, ArrayType(I8, OLD_TEAM_CONTEXT_SIZE))
    stack = rb.shared_global(GV_OLD_DATA_STACK, ArrayType(I8, OLD_DATA_STACK_SIZE))
    gvs = OldRTGlobals(context=ctx, data_stack=stack)

    _build_alloc(rb, gvs)
    _build_init_deinit(rb, gvs)
    _build_parallel(rb, gvs)
    _build_worksharing(rb, gvs)
    _build_queries(rb, gvs)
    return gvs


# ------------------------------------------------------------------ allocation --


def _build_alloc(rb: RuntimeBuilder, gvs: OldRTGlobals) -> None:
    ctx, stack = gvs.context, gvs.data_stack

    func, b = rb.define("__kmpc_alloc_shared_old", PTR, [I64], ["size"])
    size = func.args[0]
    top_addr = b.ptradd(ctx, OFF_STACK_TOP, "top.addr")
    top = b.load(I32, top_addr, "top")
    new_top = b.add(top, b.trunc(size, I32), "top.new")
    fits = b.icmp("sle", new_top, b.i32(OLD_DATA_STACK_SIZE), "fits")
    stack_block = func.add_block("stack")
    fallback = func.add_block("fallback")
    b.cond_br(fits, stack_block, fallback)

    b.set_insert_point(stack_block)
    ptr = b.ptradd(stack, b.sext(top, I64), "alloc.ptr")
    b.store(new_top, top_addr)
    b.ret(b.cast("bitcast", ptr, PTR))

    b.set_insert_point(fallback)
    gptr = b.intrinsic("malloc", [size], "alloc.global")
    b.ret(b.cast("bitcast", gptr, PTR))

    func, b = rb.define("__kmpc_free_shared_old", VOID, [PTR, I64], ["ptr", "size"])
    ptr, size = func.args
    p = b.cast("ptrtoint", ptr, I64)
    lo = b.cast("ptrtoint", stack, I64)
    hi = b.add(lo, b.i64(OLD_DATA_STACK_SIZE))
    in_range = b.and_(b.icmp("uge", p, lo), b.icmp("ult", p, hi), "in.stack")
    pop_block = func.add_block("pop")
    free_block = func.add_block("free")
    done = func.add_block("done")
    b.cond_br(in_range, pop_block, free_block)
    b.set_insert_point(pop_block)
    top_addr = b.ptradd(ctx, OFF_STACK_TOP, "top.addr")
    top = b.load(I32, top_addr, "top")
    b.store(b.sub(top, b.trunc(size, I32)), top_addr)
    b.br(done)
    b.set_insert_point(free_block)
    b.intrinsic("free", [b.cast("bitcast", ptr, PTR_GLOBAL)])
    b.br(done)
    b.set_insert_point(done)
    b.ret()


# ------------------------------------------------------------------ init/deinit --


def _build_init_deinit(rb: RuntimeBuilder, gvs: OldRTGlobals) -> None:
    ctx = gvs.context

    func, b = rb.define("__kmpc_target_init_old", I32, [I32], ["is_spmd"])
    is_spmd = func.args[0]
    tid = b.thread_id()
    bdim = b.block_dim()
    main_id = b.sub(bdim, b.i32(1), "main.id")
    is_main = b.icmp("eq", tid, main_id, "is.main")

    # Guarded (Fig. 7a) broadcast of the team context header.
    _guarded_write_i32(b, ctx, OFF_EXEC_MODE, is_spmd, is_main)
    _guarded_write_i32(b, ctx, OFF_LEVELS, b.i32(0), is_main)
    _guarded_write_i32(b, ctx, OFF_TEAM_SIZE, bdim, is_main)
    _guarded_write_i32(b, ctx, OFF_DONE, b.i32(0), is_main)
    _guarded_write_i32(b, ctx, OFF_STACK_TOP, b.i32(0), is_main)

    # Eager per-warp ICV records: every warp master writes defaults, so
    # the state area is never the all-zero page the new runtime keeps.
    rec = _warp_record_addr(b, ctx)
    lane = b.intrinsic("gpu.lane_id", [], "lane")
    is_warp_master = b.icmp("eq", lane, b.i32(0), "warp.master")
    wm_block = func.add_block("warp.init")
    wm_cont = func.add_block("warp.cont")
    b.cond_br(is_warp_master, wm_block, wm_cont)
    b.set_insert_point(wm_block)
    b.store(b.i32(0), rec)  # levels
    b.store(bdim, b.ptradd(rec, 4))  # nthreads
    b.br(wm_cont)
    b.set_insert_point(wm_cont)
    b.barrier()  # unaligned broadcast barrier

    spmd_exit = func.add_block("spmd.exit")
    generic = func.add_block("generic")
    b.cond_br(b.icmp("ne", is_spmd, b.i32(0)), spmd_exit, generic)

    b.set_insert_point(spmd_exit)
    b.ret(b.i32(0))

    b.set_insert_point(generic)
    worker_entry = func.add_block("worker.loop")
    main_cont = func.add_block("main.cont")
    b.cond_br(is_main, main_cont, worker_entry)

    b.set_insert_point(worker_entry)
    b.barrier()
    done = b.load(I32, b.ptradd(ctx, OFF_DONE), "done")
    work_check = func.add_block("worker.check")
    worker_exit = func.add_block("worker.exit")
    b.cond_br(b.icmp("ne", done, b.i32(0)), worker_exit, work_check)

    b.set_insert_point(work_check)
    fn = b.load(I64, b.ptradd(ctx, OFF_PARALLEL_FN), "fn")
    do_work = func.add_block("worker.work")
    join = func.add_block("worker.join")
    b.cond_br(b.icmp("ne", fn, b.i64(0)), do_work, join)

    b.set_insert_point(do_work)
    args = b.load(I64, b.ptradd(ctx, OFF_PARALLEL_ARGS), "args")
    b.call_indirect(fn, [tid, b.cast("inttoptr", args, PTR)], VOID)
    b.br(join)

    b.set_insert_point(join)
    b.barrier()
    b.br(worker_entry)

    b.set_insert_point(worker_exit)
    b.ret(b.i32(1))

    b.set_insert_point(main_cont)
    b.ret(b.i32(0))

    func, b = rb.define("__kmpc_target_deinit_old", VOID, [I32], ["is_spmd"])
    is_spmd = func.args[0]
    spmd_block = func.add_block("spmd")
    generic_block = func.add_block("generic")
    b.cond_br(b.icmp("ne", is_spmd, b.i32(0)), spmd_block, generic_block)
    b.set_insert_point(spmd_block)
    b.barrier()
    b.ret()
    b.set_insert_point(generic_block)
    b.store(b.i32(1), b.ptradd(ctx, OFF_DONE))
    b.barrier()
    b.ret()


# -------------------------------------------------------------------- parallel --


def _build_parallel(rb: RuntimeBuilder, gvs: OldRTGlobals) -> None:
    ctx = gvs.context
    func, b = rb.define("__kmpc_parallel_old", VOID, [PTR, PTR], ["fn", "args"])
    fn, args = func.args

    mode = b.load(I32, b.ptradd(ctx, OFF_EXEC_MODE), "mode")
    spmd_block = func.add_block("spmd")
    generic_block = func.add_block("generic")
    b.cond_br(b.icmp("ne", mode, b.i32(0)), spmd_block, generic_block)

    # SPMD: warp masters bump the warp-record level, barrier-bracketed.
    b.set_insert_point(spmd_block)
    tid = b.thread_id()
    rec = _warp_record_addr(b, ctx)
    lane = b.intrinsic("gpu.lane_id", [], "lane")
    is_wm = b.icmp("eq", lane, b.i32(0), "warp.master")
    lv_block = func.add_block("lv.up")
    lv_cont = func.add_block("lv.cont")
    b.cond_br(is_wm, lv_block, lv_cont)
    b.set_insert_point(lv_block)
    b.store(b.i32(1), rec)
    b.br(lv_cont)
    b.set_insert_point(lv_cont)
    b.barrier()
    b.call_indirect(fn, [tid, args], VOID)
    b.barrier()
    lv_down = func.add_block("lv.down")
    lv_done = func.add_block("lv.done")
    b.cond_br(is_wm, lv_down, lv_done)
    b.set_insert_point(lv_down)
    b.store(b.i32(0), rec)
    b.br(lv_done)
    b.set_insert_point(lv_done)
    b.barrier()
    b.ret()

    # Generic: main publishes work to the control loop.
    b.set_insert_point(generic_block)
    bdim = b.block_dim()
    b.store(b.cast("ptrtoint", fn, I64), b.ptradd(ctx, OFF_PARALLEL_FN))
    b.store(b.cast("ptrtoint", args, I64), b.ptradd(ctx, OFF_PARALLEL_ARGS))
    b.store(bdim, b.ptradd(ctx, OFF_TEAM_SIZE))
    b.store(b.i32(1), b.ptradd(ctx, OFF_LEVELS))
    b.barrier()  # wake workers
    main_tid = b.sub(bdim, b.i32(1), "main.tid")
    b.call_indirect(fn, [main_tid, args], VOID)
    b.barrier()  # join
    b.store(b.i64(0), b.ptradd(ctx, OFF_PARALLEL_FN))
    b.store(b.i32(0), b.ptradd(ctx, OFF_LEVELS))
    b.ret()


# ------------------------------------------------------------------ worksharing --


def _build_chunked_loop(rb: RuntimeBuilder, gvs: OldRTGlobals, name: str, scope: str) -> None:
    """Old-style chunked dispatch: one barrier-bracketed chunk per round.

    The chunk bounds round-trip through the team context (dispatch
    state in memory), modeling the old split distribute/for scheme.
    """
    ctx = gvs.context
    func, b = rb.define(name, VOID, [PTR, PTR, I64], ["body", "args", "num_iters"])
    body_fn, args, num_iters = func.args

    tid = b.thread_id()
    bid = b.block_id()
    bdim = b.block_dim()
    gdim = b.grid_dim()
    if scope == "grid":
        executor = b.sext(b.add(b.mul(bid, bdim), tid), I64, "executor")
        round_size = b.sext(b.mul(gdim, bdim), I64, "round")
    elif scope == "team":
        executor = b.sext(tid, I64, "executor")
        round_size = b.sext(bdim, I64, "round")
    else:  # teams
        executor = b.sext(bid, I64, "executor")
        round_size = b.sext(gdim, I64, "round")

    head = func.add_block("head")
    body_block = func.add_block("chunk")
    dispatch = func.add_block("dispatch")
    skip = func.add_block("skip")
    latch = func.add_block("latch")
    exit_block = func.add_block("exit")
    b.br(head)

    b.set_insert_point(head)
    base = b.phi(I64, "base")
    base.add_incoming(b.i64(0), func.entry)
    in_range = b.icmp("slt", base, num_iters, "base.inrange")
    b.cond_br(in_range, body_block, exit_block)

    # Dispatch state kept in shared memory: the old runtime's
    # dispatch_init/next bookkeeping.
    b.set_insert_point(body_block)
    lb_addr = b.ptradd(ctx, OFF_WARP_RECORDS + 64, "dispatch.lb")
    b.store(base, lb_addr)
    iv = b.add(b.load(I64, lb_addr, "lb"), executor, "iv")
    has_work = b.icmp("slt", iv, num_iters, "has.work")
    b.cond_br(has_work, dispatch, skip)

    b.set_insert_point(dispatch)
    b.call_indirect(body_fn, [iv, args], VOID)
    b.br(skip)

    b.set_insert_point(skip)
    if scope != "teams":
        b.barrier()  # unaligned end-of-chunk synchronization
    b.br(latch)

    b.set_insert_point(latch)
    next_base = b.add(base, round_size, "base.next")
    base.add_incoming(next_base, latch)
    b.br(head)

    b.set_insert_point(exit_block)
    b.ret()


def _build_worksharing(rb: RuntimeBuilder, gvs: OldRTGlobals) -> None:
    _build_chunked_loop(rb, gvs, "__kmpc_distribute_parallel_for_old", "grid")
    _build_chunked_loop(rb, gvs, "__kmpc_for_static_old", "team")
    _build_chunked_loop(rb, gvs, "__kmpc_distribute_static_old", "teams")


# ---------------------------------------------------------------------- queries --


def _build_queries(rb: RuntimeBuilder, gvs: OldRTGlobals) -> None:
    ctx = gvs.context

    func, b = rb.define("omp_get_thread_num_old", I32, [], [])
    rec = _warp_record_addr(b, ctx)
    levels = b.load(I32, rec, "levels")
    seq = b.icmp("eq", levels, b.i32(0), "seq")
    b.ret(b.select(seq, b.i32(0), b.thread_id(), "omp.tid"))

    func, b = rb.define("omp_get_num_threads_old", I32, [], [])
    rec = _warp_record_addr(b, ctx)
    levels = b.load(I32, rec, "levels")
    size = b.load(I32, b.ptradd(ctx, OFF_TEAM_SIZE), "team.size")
    seq = b.icmp("eq", levels, b.i32(0), "seq")
    b.ret(b.select(seq, b.i32(1), size, "omp.nthreads"))

    func, b = rb.define("omp_get_team_num_old", I32, [], [])
    b.ret(b.block_id())

    func, b = rb.define("omp_get_num_teams_old", I32, [], [])
    b.ret(b.grid_dim())

    func, b = rb.define("omp_get_level_old", I32, [], [])
    rec = _warp_record_addr(b, ctx)
    b.ret(b.load(I32, rec, "levels"))

    func, b = rb.define("__kmpc_barrier_old", VOID, [], [])
    b.barrier()
    b.ret()
