"""Shared scaffolding for building runtime libraries directly into a module.

The real system links the device runtime as an LLVM bitcode library
(§II-B); here each runtime flavour *populates* its function bodies into
the application module before optimization, which is semantically the
same link-then-optimize pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.memory.addrspace import AddressSpace
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FunctionType,
    I1,
    I8,
    I32,
    I64,
    PTR_SHARED,
    Type,
    VOID,
    pointer_to,
)
from repro.ir.values import Constant, GlobalVariable, Value
from repro.runtime.config import (
    DEBUG_ASSERTIONS,
    DEBUG_FUNCTION_TRACING,
    RuntimeConfig,
)
from repro.runtime.state import GV_DEBUG_KIND, GV_DUMMY, GV_ENV_DEBUG


def cstring(module: Module, text: str, prefix: str = "str") -> GlobalVariable:
    """Intern a NUL-terminated string constant in constant memory."""
    payload = text.encode("utf-8") + b"\x00"
    name = f"{prefix}.{abs(hash(text)) & 0xFFFFFF:x}"
    existing = module.globals.get(name)
    if existing is not None:
        return existing
    gv = GlobalVariable(
        name,
        ArrayType(I8, len(payload)),
        addrspace=AddressSpace.CONSTANT,
        initializer=payload,
        is_constant=True,
    )
    return module.add_global(gv)


class RuntimeBuilder:
    """Helper that defines runtime functions inside an application module."""

    def __init__(self, module: Module, config: RuntimeConfig) -> None:
        self.module = module
        self.config = config

    # -- function scaffolding ---------------------------------------------------

    def define(
        self,
        name: str,
        ret: Type,
        params: Sequence[Type],
        param_names: Sequence[str],
        inline: bool = True,
    ) -> Tuple[Function, IRBuilder]:
        """Create (or fill in) @name and return it with a positioned builder."""
        func = self.module.declare(name, FunctionType(ret, tuple(params)))
        if not func.is_declaration:
            raise ValueError(f"runtime function @{name} already defined")
        for arg, pname in zip(func.args, param_names):
            arg.name = pname
        func.linkage = "internal"
        if inline:
            func.attrs.add("alwaysinline")
        entry = func.add_block("entry")
        builder = IRBuilder(self.module, entry)
        return func, builder

    # -- configuration constants ---------------------------------------------------

    def config_global(self, name: str, value: int) -> GlobalVariable:
        """Emit a compiler-controlled constant global (§III-F mechanism)."""
        existing = self.module.globals.get(name)
        if existing is not None:
            return existing
        gv = GlobalVariable(
            name,
            I32,
            addrspace=AddressSpace.CONSTANT,
            initializer=[Constant(I32, value)],
            is_constant=True,
        )
        return self.module.add_global(gv)

    def shared_global(self, name: str, ty: Type) -> GlobalVariable:
        existing = self.module.globals.get(name)
        if existing is not None:
            return existing
        gv = GlobalVariable(name, ty, addrspace=AddressSpace.SHARED)
        return self.module.add_global(gv)

    def device_global(self, name: str, ty: Type) -> GlobalVariable:
        existing = self.module.globals.get(name)
        if existing is not None:
            return existing
        # External linkage: the host writes these (device environment),
        # so they must stay out of reach of internal-object reasoning.
        gv = GlobalVariable(name, ty, addrspace=AddressSpace.GLOBAL, linkage="external")
        return self.module.add_global(gv)

    # -- common emitters -----------------------------------------------------------

    def emit_conditional_write(
        self, b: IRBuilder, ptr: Value, value: Value, cond: Value
    ) -> None:
        """Broadcast write by one thread (paper Fig. 7).

        The default scheme is the conditional *pointer* (Fig. 7b): the
        store executes on every thread and therefore dominates the
        subsequent barrier, which is what lets the assumed-memory-content
        analysis justify its effect (§IV-B3).  The "guarded" scheme
        (Fig. 7a) branches instead — available as a design-choice
        ablation; it costs extra control flow and leaves the write
        control-dependent.
        """
        if self.config.broadcast_scheme == "guarded":
            func = b.function
            write_block = func.add_block("gw.write", after=b.block)
            cont_block = func.add_block("gw.cont", after=write_block)
            b.cond_br(cond, write_block, cont_block)
            b.set_insert_point(write_block)
            b.store(value, ptr)
            b.br(cont_block)
            b.set_insert_point(cont_block)
            return
        dummy = self.shared_global(GV_DUMMY, I64)
        target = b.select(cond, ptr, dummy, "cw.target")
        b.store(value, target)

    def emit_team_barrier(self, b: IRBuilder) -> None:
        """The runtime's broadcast barrier: aligned when the co-design
        annotations are enabled, generic otherwise (§IV-D ablation)."""
        if self.config.use_aligned_barriers:
            b.aligned_barrier()
        else:
            b.barrier()

    def emit_debug_guard(self, b: IRBuilder, feature_bit: int) -> Tuple[BasicBlock, BasicBlock]:
        """Branch on (compile-time debug_kind & bit) && runtime env flag.

        Returns (debug_block, continue_block); the builder is left
        positioned in debug_block.  With debug compiled out the condition
        folds to false and the debug block becomes statically dead.
        """
        dk_gv = self.config_global(GV_DEBUG_KIND, self.config.debug_kind)
        env_gv = self.device_global(GV_ENV_DEBUG, I32)
        dk = b.load(I32, dk_gv, "debug.kind")
        bit = b.and_(dk, feature_bit)
        compiled_in = b.icmp("ne", bit, 0)
        env = b.load(I32, env_gv, "debug.env")
        env_bit = b.and_(env, feature_bit)
        active = b.icmp("ne", env_bit, 0)
        both = b.and_(compiled_in, active)

        func = b.function
        debug_block = func.add_block("debug", after=b.block)
        cont_block = func.add_block("debug.cont", after=debug_block)
        b.cond_br(both, debug_block, cont_block)
        b.set_insert_point(debug_block)
        return debug_block, cont_block

    def emit_trace(self, b: IRBuilder, name: str) -> None:
        """Runtime-call function tracing (§III-G, debug bit 1)."""
        if not self.config.debug_enabled:
            # Keep release IR clean: tracing is compiled out entirely when
            # no debug feature was requested at compile time.
            return
        debug_block, cont = self.emit_debug_guard(b, DEBUG_FUNCTION_TRACING)
        msg = cstring(self.module, name, prefix="trace")
        addr = b.cast("ptrtoint", msg, I64)
        b.intrinsic("rt.print_str", [addr])
        b.br(cont)
        b.set_insert_point(cont)

    def emit_assert(self, b: IRBuilder, cond: Value, message: str) -> None:
        """``__assert_assume``: checked in debug, assumed in release (§III-G)."""
        if self.config.debug_enabled:
            debug_block, cont = self.emit_debug_guard(b, DEBUG_ASSERTIONS)
            func = b.function
            fail = func.add_block("assert.fail", after=debug_block)
            b.cond_br(cond, cont, fail)
            b.set_insert_point(fail)
            msg = cstring(self.module, f"assertion failed: {message}", prefix="assert")
            addr = b.cast("ptrtoint", msg, I64)
            b.intrinsic("rt.print_str", [addr])
            b.intrinsic("llvm.trap")
            b.unreachable()
            b.set_insert_point(cont)
        b.assume(cond)
