"""OpenMP GPU device runtimes (new co-designed + legacy baseline)."""

from repro.runtime.config import (  # noqa: F401
    DEBUG_ASSERTIONS,
    DEBUG_FUNCTION_TRACING,
    RuntimeConfig,
)
from repro.runtime.icv import ICV_DEFAULTS, ICV_STATE, icv_offset, icv_state_size  # noqa: F401
from repro.runtime.state import TEAM_STATE, team_state_offset, team_state_size  # noqa: F401
