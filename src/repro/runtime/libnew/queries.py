"""OpenMP query API (``omp_get_*``) over the runtime state.

Every query routes through the thread-state lookup so that, once the
optimizer proves no thread ICV state is ever created, the whole chain
folds down to a hardware register read or a literal constant — that is
the "near-zero overhead" headline mechanism of the paper.
"""

from __future__ import annotations

from repro.ir.types import I32, VOID
from repro.runtime.common import RuntimeBuilder
from repro.runtime.libnew.globals import NewRTGlobals


def build_queries(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    module = rb.module
    lookup = module.get_function("__omp_lookup_icv_state")

    # omp_get_thread_num: 0 in sequential context, hardware tid inside a
    # top-level parallel region (identity mapping).
    func, b = rb.define("omp_get_thread_num", I32, [], [])
    state = b.call(lookup, [], "state")
    levels = b.load(I32, b.ptradd(state, gvs.off_levels), "levels")
    seq = b.icmp("eq", levels, b.i32(0), "seq")
    tid = b.thread_id()
    b.ret(b.select(seq, b.i32(0), tid, "omp.tid"))

    # omp_get_num_threads: 1 sequentially and in serialized nested
    # regions, the parallel team size at level 1.
    func, b = rb.define("omp_get_num_threads", I32, [], [])
    state = b.call(lookup, [], "state")
    levels = b.load(I32, b.ptradd(state, gvs.off_levels), "levels")
    size_addr = b.ptradd(gvs.team_state, gvs.off_parallel_team_size)
    team_size = b.load(I32, size_addr, "team.size")
    at_top = b.icmp("eq", levels, b.i32(1), "at.top")
    inner = b.select(at_top, team_size, b.i32(1), "nt.inner")
    seq = b.icmp("eq", levels, b.i32(0), "seq")
    b.ret(b.select(seq, b.i32(1), inner, "omp.nthreads"))

    func, b = rb.define("omp_get_team_num", I32, [], [])
    b.ret(b.block_id())

    func, b = rb.define("omp_get_num_teams", I32, [], [])
    b.ret(b.grid_dim())

    func, b = rb.define("omp_get_level", I32, [], [])
    state = b.call(lookup, [], "state")
    b.ret(b.load(I32, b.ptradd(state, gvs.off_levels), "levels"))

    func, b = rb.define("omp_get_max_threads", I32, [], [])
    b.ret(b.block_dim())

    func, b = rb.define("omp_is_spmd_mode", I32, [], [])
    b.ret(b.load(I32, gvs.is_spmd_mode, "spmd"))


def build_sync(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    """Barrier entry points.

    ``__kmpc_barrier_simple_spmd`` is the aligned barrier the compiler
    emits when it knows all threads reach the same program point; its
    assumptions mirror the paper's Fig. 6 ``omp assumes`` annotations.
    """
    func, b = rb.define("__kmpc_barrier_simple_spmd", VOID, [], [])
    if rb.config.use_aligned_barriers:
        func.assumptions.add("ext_aligned_barrier")
    func.assumptions.add("ext_no_call_asm")
    rb.emit_team_barrier(b)
    b.ret()

    func, b = rb.define("__kmpc_barrier", VOID, [], [])
    func.assumptions.add("ext_no_call_asm")
    b.barrier()
    b.ret()
