"""Thread ICV state management (paper §III-C, Fig. 3).

Every thread owns one slot in the shared thread-states array.  NULL
means "use the team state"; a non-NULL slot points at an on-demand
record allocated from the shared-memory stack, holding a private ICV
copy plus a link to the previous record (nested data environments).

``__omp_lookup_icv_state`` is the single lookup path all ICV reads go
through — the load the optimizer must fold to the team state to remove
runtime state entirely (§IV-B1: the zero-initialized-array deduction).
"""

from __future__ import annotations

from repro.ir.types import I32, I64, PTR, PTR_SHARED, VOID
from repro.runtime.common import RuntimeBuilder
from repro.runtime.libnew.globals import NewRTGlobals


def build_lookup_icv_state(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    """``__omp_lookup_icv_state() -> ptr`` — current thread's ICV state.

    The lookup is guarded by ``TeamState.has_thread_state``: a *direct*
    team-state load the §IV-B3 assumptions can fold.  This breaks the
    circular dependency between eliminating the thread-state array and
    proving the nested-parallel paths dead — precisely the co-design
    trick the real deviceRTL uses.
    """
    func, b = rb.define("__omp_lookup_icv_state", PTR, [], [])
    hts_addr = b.ptradd(gvs.team_state, gvs.off_has_thread_state, "hts.addr")
    hts = b.load(I32, hts_addr, "hts")
    any_state = b.icmp("ne", hts, b.i32(0), "hts.any")
    slow = func.add_block("slow")
    fast = func.add_block("fast")
    b.cond_br(any_state, slow, fast)

    b.set_insert_point(fast)
    b.ret(b.cast("bitcast", gvs.team_state, PTR))

    b.set_insert_point(slow)
    tid = b.thread_id()
    slot_addr = b.array_gep(gvs.thread_states, I64, tid, "slot.addr")
    slot = b.load(I64, slot_addr, "slot")
    is_null = b.icmp("eq", slot, b.i64(0), "slot.null")
    team_icvs = b.cast("ptrtoint", gvs.team_state, I64, "team.icvs")
    picked = b.select(is_null, team_icvs, slot, "icv.addr")
    b.ret(b.cast("inttoptr", picked, PTR))


def build_icv_accessors(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    """Typed getters/setters for the ICVs the lowering needs."""
    lookup = rb.module.get_function("__omp_lookup_icv_state")

    for icv, offset in (("levels", gvs.off_levels), ("nthreads", gvs.off_nthreads)):
        func, b = rb.define(f"__omp_get_{icv}_icv", I32, [], [])
        state = b.call(lookup, [], "state")
        addr = b.ptradd(state, offset, f"{icv}.addr")
        b.ret(b.load(I32, addr, icv))

        func, b = rb.define(f"__omp_set_{icv}_icv", VOID, [I32], ["value"])
        state = b.call(lookup, [], "state")
        addr = b.ptradd(state, offset, f"{icv}.addr")
        b.store(func.args[0], addr)
        b.ret()


def build_push_pop_thread_state(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    """On-demand thread ICV state creation/destruction (Fig. 3/4)."""
    module = rb.module
    alloc = module.get_function("__kmpc_alloc_shared")
    free = module.get_function("__kmpc_free_shared")
    lookup = module.get_function("__omp_lookup_icv_state")
    record = gvs.thread_state_record_size

    func, b = rb.define("__omp_push_thread_state", VOID, [], [])
    rb.emit_trace(b, "__omp_push_thread_state")
    tid = b.thread_id()
    new = b.call(alloc, [b.i64(record)], "ts.new")
    cur = b.call(lookup, [], "ts.cur")
    b.intrinsic(
        "llvm.memcpy",
        [b.cast("bitcast", new, PTR), b.cast("bitcast", cur, PTR), b.i64(gvs.icv_size)],
    )
    slot_addr = b.array_gep(gvs.thread_states, I64, tid, "slot.addr")
    old_slot = b.load(I64, slot_addr, "slot.old")
    link_addr = b.ptradd(new, gvs.icv_size, "ts.link")
    b.store(old_slot, link_addr)
    b.store(b.cast("ptrtoint", new, I64), slot_addr)
    hts_addr = b.ptradd(gvs.team_state, gvs.off_has_thread_state, "hts.addr")
    b.store(b.i32(1), hts_addr)
    b.ret()

    func, b = rb.define("__omp_pop_thread_state", VOID, [], [])
    rb.emit_trace(b, "__omp_pop_thread_state")
    tid = b.thread_id()
    slot_addr = b.array_gep(gvs.thread_states, I64, tid, "slot.addr")
    slot = b.load(I64, slot_addr, "slot")
    rb.emit_assert(b, b.icmp("ne", slot, b.i64(0)), "pop of empty thread state")
    state = b.cast("inttoptr", slot, PTR, "ts")
    link_addr = b.ptradd(state, gvs.icv_size, "ts.link")
    prev = b.load(I64, link_addr, "ts.prev")
    b.store(prev, slot_addr)
    b.call(free, [state, b.i64(record)])
    b.ret()
