"""Shared-memory stack of the new runtime (paper §III-D).

``__kmpc_alloc_shared`` serves team-shareable allocations from a
pre-allocated shared buffer, split into per-thread LIFO slices, and
falls back to global ``malloc`` when a slice is full.  Both
globalization (§IV-A2) and on-demand thread ICV states (§III-C) are
its clients; when the optimizer eliminates every client the stack
globals become unreferenced and are pruned, zeroing the kernel's
shared-memory footprint (Fig. 11).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.types import I32, I64, PTR, PTR_GLOBAL, VOID
from repro.memory.layout import DATA_LAYOUT
from repro.runtime.common import RuntimeBuilder
from repro.runtime.libnew.globals import NewRTGlobals
from repro.runtime.state import GV_SMEM_STACK, GV_SMEM_STACK_TOPS


def shared_stack_saturation(module) -> Optional[Tuple[str, int, int, int]]:
    """Describe how to pin *module*'s shared stack at "full".

    Returns ``(global_name, byte_offset, per_thread_stride, value)``:
    storing the i32 *value* at ``&global + byte_offset + per_thread_stride
    * thread_id`` makes every subsequent ``__kmpc_alloc_shared`` by that
    thread take the global-malloc fallback (``top + size <= slice_size``
    is already false for ``top == slice_size`` and any positive size,
    and nothing larger can be written without overflowing the i32 sum).
    Returns ``None`` when the module has no shared stack — pruned by the
    optimizer or built with ``globalization_via_malloc``.

    This is the runtime-owned face of the ``shared_stack_exhaust``
    fault site: the layout facts live next to the IR that defines them,
    so :mod:`repro.faults` never hardcodes the stack geometry.
    """
    tops = module.globals.get(GV_SMEM_STACK_TOPS)
    stack = module.globals.get(GV_SMEM_STACK)
    if tops is None or stack is None:
        return None
    slots = DATA_LAYOUT.size_of(tops.value_type) // 4  # i32 per thread slot
    slice_size = DATA_LAYOUT.size_of(stack.value_type) // slots
    return (GV_SMEM_STACK_TOPS, 0, 4, slice_size)


def build_alloc_shared(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    config = rb.config
    func, b = rb.define("__kmpc_alloc_shared", PTR, [I64], ["size"])
    size = func.args[0]
    rb.emit_trace(b, "__kmpc_alloc_shared")
    if config.globalization_via_malloc:
        # Design-choice ablation (§III-D): no shared stack at all; every
        # globalized allocation pays a global-memory round trip.
        gptr = b.intrinsic("malloc", [size], "alloc.global")
        b.ret(b.cast("bitcast", gptr, PTR))
        return
    tid = b.thread_id()
    top_addr = b.array_gep(gvs.smem_stack_tops, I32, tid, "top.addr")
    top = b.load(I32, top_addr, "top")
    size32 = b.trunc(size, I32)
    new_top = b.add(top, size32, "top.new")
    slice_size = b.i32(config.stack_slice_size)
    fits = b.icmp("sle", new_top, slice_size, "fits")

    shared_path = func.add_block("stack")
    global_path = func.add_block("fallback")
    b.cond_br(fits, shared_path, global_path)

    b.set_insert_point(shared_path)
    slice_base = b.mul(tid, slice_size, "slice.base")
    offset = b.add(slice_base, top, "alloc.off")
    ptr = b.ptradd(gvs.smem_stack, b.sext(offset, I64), "alloc.ptr")
    b.store(new_top, top_addr)
    b.ret(b.cast("bitcast", ptr, PTR))

    b.set_insert_point(global_path)
    gptr = b.intrinsic("malloc", [size], "alloc.global")
    b.ret(b.cast("bitcast", gptr, PTR))


def build_free_shared(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    config = rb.config
    func, b = rb.define("__kmpc_free_shared", VOID, [PTR, I64], ["ptr", "size"])
    ptr, size = func.args
    rb.emit_trace(b, "__kmpc_free_shared")
    if config.globalization_via_malloc:
        b.intrinsic("free", [b.cast("bitcast", ptr, PTR_GLOBAL)])
        b.ret()
        return
    p = b.cast("ptrtoint", ptr, I64, "p")
    lo = b.cast("ptrtoint", gvs.smem_stack, I64, "stack.lo")
    hi = b.add(lo, b.i64(config.smem_stack_size), "stack.hi")
    ge = b.icmp("uge", p, lo)
    lt = b.icmp("ult", p, hi)
    in_range = b.and_(ge, lt, "in.stack")

    pop_path = func.add_block("pop")
    free_path = func.add_block("free")
    done = func.add_block("done")
    b.cond_br(in_range, pop_path, free_path)

    b.set_insert_point(pop_path)
    tid = b.thread_id()
    top_addr = b.array_gep(gvs.smem_stack_tops, I32, tid, "top.addr")
    top = b.load(I32, top_addr, "top")
    size32 = b.trunc(size, I32)
    b.store(b.sub(top, size32), top_addr)
    b.br(done)

    b.set_insert_point(free_path)
    b.intrinsic("free", [b.cast("bitcast", ptr, PTR_GLOBAL)])
    b.br(done)

    b.set_insert_point(done)
    b.ret()
