"""State globals of the new device runtime (paper §III-A…III-D).

Everything lives in static shared memory: the SPMD-mode flag, the team
ICV state, the thread-state pointer array (NULL-initialized), and the
pre-allocated shared-memory stack with its per-thread top offsets.
The over-subscription assumptions and the debug feature mask are
emitted as *constant* globals so the optimizer can fold loads of them
(§III-F/G).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Module
from repro.ir.types import I32, I64
from repro.ir.values import GlobalVariable
from repro.runtime.common import RuntimeBuilder
from repro.runtime.config import RuntimeConfig
from repro.runtime.icv import ICV_STATE, icv_offset, icv_state_size
from repro.runtime.state import (
    GV_ASSUME_TEAMS_OVERSUB,
    GV_ASSUME_THREADS_OVERSUB,
    GV_DEBUG_KIND,
    GV_DUMMY,
    GV_ENV_DEBUG,
    GV_IS_SPMD_MODE,
    GV_SMEM_STACK,
    GV_SMEM_STACK_TOPS,
    GV_TEAM_STATE,
    GV_THREAD_STATES,
    TEAM_STATE,
    smem_stack_type,
    smem_tops_type,
    team_state_offset,
    thread_states_type,
)


@dataclass
class NewRTGlobals:
    """Handles to the runtime state globals plus layout constants."""

    is_spmd_mode: GlobalVariable
    team_state: GlobalVariable
    thread_states: GlobalVariable
    smem_stack: GlobalVariable
    smem_stack_tops: GlobalVariable
    dummy: GlobalVariable
    assume_teams_oversub: GlobalVariable
    assume_threads_oversub: GlobalVariable
    debug_kind: GlobalVariable
    env_debug: GlobalVariable

    # Byte offsets within TeamState.
    off_levels: int = 0
    off_active_levels: int = 0
    off_nthreads: int = 0
    off_parallel_team_size: int = 0
    off_has_thread_state: int = 0
    off_parallel_region_fn: int = 0
    off_parallel_args: int = 0
    off_done: int = 0
    icv_size: int = 0
    #: Size of one on-demand thread ICV state record: the ICVs plus a
    #: trailing i64 link to the previous record (nesting list, Fig. 3).
    thread_state_record_size: int = 0


def create_new_rt_globals(rb: RuntimeBuilder) -> NewRTGlobals:
    module, config = rb.module, rb.config
    module.add_struct_type(ICV_STATE)
    module.add_struct_type(TEAM_STATE)

    gvs = NewRTGlobals(
        is_spmd_mode=rb.shared_global(GV_IS_SPMD_MODE, I32),
        team_state=rb.shared_global(GV_TEAM_STATE, TEAM_STATE),
        thread_states=rb.shared_global(
            GV_THREAD_STATES, thread_states_type(config.max_threads)
        ),
        smem_stack=rb.shared_global(
            GV_SMEM_STACK, smem_stack_type(config.smem_stack_size)
        ),
        smem_stack_tops=rb.shared_global(
            GV_SMEM_STACK_TOPS, smem_tops_type(config.max_threads)
        ),
        dummy=rb.shared_global(GV_DUMMY, I64),
        assume_teams_oversub=rb.config_global(
            GV_ASSUME_TEAMS_OVERSUB, int(config.assume_teams_oversubscription)
        ),
        assume_threads_oversub=rb.config_global(
            GV_ASSUME_THREADS_OVERSUB, int(config.assume_threads_oversubscription)
        ),
        debug_kind=rb.config_global(GV_DEBUG_KIND, config.debug_kind),
        env_debug=rb.device_global(GV_ENV_DEBUG, I32),
    )

    icvs_base = team_state_offset("icvs")
    gvs.off_nthreads = icvs_base + icv_offset("nthreads_var")
    gvs.off_levels = icvs_base + icv_offset("levels_var")
    gvs.off_active_levels = icvs_base + icv_offset("active_levels_var")
    gvs.off_parallel_team_size = team_state_offset("parallel_team_size")
    gvs.off_has_thread_state = team_state_offset("has_thread_state")
    gvs.off_parallel_region_fn = team_state_offset("parallel_region_fn")
    gvs.off_parallel_args = team_state_offset("parallel_args")
    gvs.off_done = team_state_offset("done")
    gvs.icv_size = icv_state_size()
    gvs.thread_state_record_size = gvs.icv_size + 8
    return gvs
