"""Assembles the new device runtime into an application module.

Definition order matters only in that callees must exist before the
functions that call them are built.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.runtime.common import RuntimeBuilder
from repro.runtime.config import RuntimeConfig
from repro.runtime.libnew.globals import NewRTGlobals, create_new_rt_globals
from repro.runtime.libnew.icv import (
    build_icv_accessors,
    build_lookup_icv_state,
    build_push_pop_thread_state,
)
from repro.runtime.libnew.init import build_target_deinit, build_target_init
from repro.runtime.libnew.memory import build_alloc_shared, build_free_shared
from repro.runtime.libnew.parallel import build_parallel_51
from repro.runtime.libnew.queries import build_queries, build_sync
from repro.runtime.libnew.worksharing import build_worksharing

#: Function names this runtime provides (the "bitcode library" surface).
NEW_RUNTIME_API = (
    "__kmpc_target_init",
    "__kmpc_target_deinit",
    "__kmpc_parallel_51",
    "__kmpc_distribute_parallel_for",
    "__kmpc_for_static_loop",
    "__kmpc_distribute_static_loop",
    "__kmpc_alloc_shared",
    "__kmpc_free_shared",
    "__kmpc_barrier",
    "__kmpc_barrier_simple_spmd",
    "omp_get_thread_num",
    "omp_get_num_threads",
    "omp_get_team_num",
    "omp_get_num_teams",
    "omp_get_level",
    "omp_get_max_threads",
    "omp_is_spmd_mode",
)


def populate_new_runtime(module: Module, config: RuntimeConfig) -> NewRTGlobals:
    """Build the new runtime's globals and functions inside *module*.

    Returns the global handles so tests can poke at the state layout.
    """
    rb = RuntimeBuilder(module, config)
    gvs = create_new_rt_globals(rb)

    build_alloc_shared(rb, gvs)
    build_free_shared(rb, gvs)
    build_lookup_icv_state(rb, gvs)
    build_icv_accessors(rb, gvs)
    build_push_pop_thread_state(rb, gvs)
    build_target_init(rb, gvs)
    build_target_deinit(rb, gvs)
    build_parallel_51(rb, gvs)
    build_worksharing(rb, gvs)
    build_queries(rb, gvs)
    build_sync(rb, gvs)
    return gvs
