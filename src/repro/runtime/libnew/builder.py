"""Assembles the new device runtime into an application module.

Definition order matters only in that callees must exist before the
functions that call them are built.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.runtime.common import RuntimeBuilder
from repro.runtime.config import RuntimeConfig
from repro.runtime.libnew.globals import NewRTGlobals, create_new_rt_globals
from repro.runtime.libnew.icv import (
    build_icv_accessors,
    build_lookup_icv_state,
    build_push_pop_thread_state,
)
from repro.runtime.libnew.init import build_target_deinit, build_target_init
from repro.runtime.libnew.memory import build_alloc_shared, build_free_shared
from repro.runtime.libnew.parallel import build_parallel_51
from repro.runtime.libnew.queries import build_queries, build_sync
from repro.runtime.libnew.worksharing import build_worksharing

#: Function names this runtime provides (the "bitcode library" surface).
NEW_RUNTIME_API = (
    "__kmpc_target_init",
    "__kmpc_target_deinit",
    "__kmpc_parallel_51",
    "__kmpc_distribute_parallel_for",
    "__kmpc_for_static_loop",
    "__kmpc_distribute_static_loop",
    "__kmpc_alloc_shared",
    "__kmpc_free_shared",
    "__kmpc_barrier",
    "__kmpc_barrier_simple_spmd",
    "omp_get_thread_num",
    "omp_get_num_threads",
    "omp_get_team_num",
    "omp_get_num_teams",
    "omp_get_level",
    "omp_get_max_threads",
    "omp_is_spmd_mode",
)

#: Overhead attribution for the trace layer (:mod:`repro.trace`):
#: runtime entry point -> paper overhead category.  Includes the
#: internal helpers because, pre-inlining, their calls are what the
#: simulator observes; after openmp-opt most of these disappear, which
#: is exactly the near-zero-overhead story the counters illustrate.
NEW_RT_OVERHEAD_CATEGORIES = {
    "__kmpc_target_init": "target_init",
    "__kmpc_target_deinit": "target_init",
    "__kmpc_parallel_51": "parallel_region",
    "__kmpc_distribute_parallel_for": "worksharing",
    "__kmpc_for_static_loop": "worksharing",
    "__kmpc_distribute_static_loop": "worksharing",
    "__kmpc_alloc_shared": "shared_stack",
    "__kmpc_free_shared": "shared_stack",
    "__kmpc_barrier": "sync",
    "__kmpc_barrier_simple_spmd": "sync",
    "omp_get_thread_num": "icv_query",
    "omp_get_num_threads": "icv_query",
    "omp_get_team_num": "icv_query",
    "omp_get_num_teams": "icv_query",
    "omp_get_level": "icv_query",
    "omp_get_max_threads": "icv_query",
    "omp_is_spmd_mode": "icv_query",
    "__omp_lookup_icv_state": "icv_query",
    "__omp_get_levels_icv": "icv_query",
    "__omp_set_levels_icv": "icv_query",
    "__omp_get_nthreads_icv": "icv_query",
    "__omp_set_nthreads_icv": "icv_query",
    "__omp_push_thread_state": "thread_state",
    "__omp_pop_thread_state": "thread_state",
}


def populate_new_runtime(module: Module, config: RuntimeConfig) -> NewRTGlobals:
    """Build the new runtime's globals and functions inside *module*.

    Returns the global handles so tests can poke at the state layout.
    """
    rb = RuntimeBuilder(module, config)
    gvs = create_new_rt_globals(rb)

    build_alloc_shared(rb, gvs)
    build_free_shared(rb, gvs)
    build_lookup_icv_state(rb, gvs)
    build_icv_accessors(rb, gvs)
    build_push_pop_thread_state(rb, gvs)
    build_target_init(rb, gvs)
    build_target_deinit(rb, gvs)
    build_parallel_51(rb, gvs)
    build_worksharing(rb, gvs)
    build_queries(rb, gvs)
    build_sync(rb, gvs)
    return gvs
