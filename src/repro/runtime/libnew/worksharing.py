"""Combined worksharing loops — the paper's Fig. 5 ``noChunkImpl``.

One grid-strided implementation per scheduling scope:

* ``__kmpc_distribute_parallel_for`` — iterations over all threads of
  the whole grid (combined ``distribute parallel for``);
* ``__kmpc_for_static_loop`` — iterations over the threads of one team
  (``for`` inside ``parallel``);
* ``__kmpc_distribute_static_loop`` — iterations over teams
  (``distribute``).

Each reads its over-subscription flag from a compiler-emitted constant
global (§III-F).  When the flag is 1 the runtime *asserts* that every
thread runs at most one iteration (checked in debug, assumed in
release) and breaks out of the loop, which lets constant folding delete
the back edge and all loop-carried state.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.builder import IRBuilder
from repro.ir.module import Function
from repro.ir.types import I32, I64, PTR, VOID
from repro.ir.values import GlobalVariable, Value
from repro.runtime.common import RuntimeBuilder
from repro.runtime.libnew.globals import NewRTGlobals


def _build_no_chunk_loop(
    rb: RuntimeBuilder,
    name: str,
    start_of: Callable[[IRBuilder], Value],
    stride_of: Callable[[IRBuilder], Value],
    oversub_flag: GlobalVariable,
    oversub_what: str,
) -> None:
    """Emit one Fig.-5-style loop runtime function."""
    func, b = rb.define(name, VOID, [PTR, PTR, I64], ["body", "args", "num_iters"])
    body_fn, args, num_iters = func.args
    rb.emit_trace(b, name)

    start = b.sext(start_of(b), I64, "iv.start")
    stride = b.sext(stride_of(b), I64, "iv.stride")
    oversub = b.load(I32, oversub_flag, "oversub")
    oversub_on = b.icmp("ne", oversub, b.i32(0), "oversub.on")

    check_block = func.add_block("oversub.check")
    head_block = func.add_block("head")
    b.cond_br(oversub_on, check_block, head_block)

    # User promised over-subscription: verify (debug) / assume (release)
    # that each executor covers at most one iteration.
    b.set_insert_point(check_block)
    holds = b.icmp("sle", num_iters, stride, "oversub.holds")
    rb.emit_assert(b, holds, f"{oversub_what} over-subscription assumption")
    b.br(head_block)

    # if (IV < NumIters) do { body(IV); IV += stride; if (oversub) break; }
    # while (IV < NumIters);   -- Fig. 5
    b.set_insert_point(head_block)
    in_range = b.icmp("slt", start, num_iters, "iv.inrange")
    body_block = func.add_block("body")
    exit_block = func.add_block("exit")
    b.cond_br(in_range, body_block, exit_block)

    b.set_insert_point(body_block)
    iv = b.phi(I64, "iv")
    iv.add_incoming(start, head_block)
    b.call_indirect(body_fn, [iv, args], VOID)
    next_iv = b.add(iv, stride, "iv.next")
    latch_block = func.add_block("latch")
    b.cond_br(oversub_on, exit_block, latch_block)

    b.set_insert_point(latch_block)
    again = b.icmp("slt", next_iv, num_iters, "iv.again")
    iv.add_incoming(next_iv, latch_block)
    b.cond_br(again, body_block, exit_block)

    b.set_insert_point(exit_block)
    b.ret()


def build_worksharing(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    # Combined distribute parallel for: one iteration per grid thread.
    _build_no_chunk_loop(
        rb,
        "__kmpc_distribute_parallel_for",
        start_of=lambda b: b.add(b.mul(b.block_id(), b.block_dim()), b.thread_id()),
        stride_of=lambda b: b.mul(b.grid_dim(), b.block_dim()),
        oversub_flag=gvs.assume_threads_oversub,
        oversub_what="thread",
    )
    # Worksharing for within one team.
    _build_no_chunk_loop(
        rb,
        "__kmpc_for_static_loop",
        start_of=lambda b: b.thread_id(),
        stride_of=lambda b: b.block_dim(),
        oversub_flag=gvs.assume_threads_oversub,
        oversub_what="thread",
    )
    # Distribute across teams.
    _build_no_chunk_loop(
        rb,
        "__kmpc_distribute_static_loop",
        start_of=lambda b: b.block_id(),
        stride_of=lambda b: b.grid_dim(),
        oversub_flag=gvs.assume_teams_oversub,
        oversub_what="team",
    )
