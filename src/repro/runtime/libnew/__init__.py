"""The new OpenMP GPU device runtime (paper §III) as an IR library."""

from repro.runtime.libnew.builder import (  # noqa: F401
    NEW_RT_OVERHEAD_CATEGORIES,
    NEW_RUNTIME_API,
    populate_new_runtime,
)
from repro.runtime.libnew.globals import NewRTGlobals  # noqa: F401
