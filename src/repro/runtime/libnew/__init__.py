"""The new OpenMP GPU device runtime (paper §III) as an IR library."""

from repro.runtime.libnew.builder import NEW_RUNTIME_API, populate_new_runtime  # noqa: F401
from repro.runtime.libnew.globals import NewRTGlobals  # noqa: F401
