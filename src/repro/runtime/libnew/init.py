"""Kernel initialization/deinitialization and the generic-mode state machine.

``__kmpc_target_init`` runs on every thread at kernel entry:

* SPMD mode: thread 0 broadcasts the SPMD flag and the team ICV
  defaults through conditional-pointer writes (Fig. 7b), everyone
  clears their own thread-state slot, and an aligned barrier publishes
  the state.  Assumptions (Fig. 8b) then pin the published values for
  the optimizer (§IV-B3).
* Generic mode: the main thread (the last thread of the team, as in
  the LLVM deviceRTL) initializes state and returns 0 to run the user's
  sequential region; workers enter the state machine and only return
  (with 1) when the main thread signals termination, after which the
  kernel epilogue returns.

The returned value is therefore "should this thread exit immediately".
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Function
from repro.ir.types import I32, I64, PTR, VOID
from repro.ir.values import Constant, Value
from repro.runtime.common import RuntimeBuilder
from repro.runtime.icv import ICV_DEFAULTS
from repro.runtime.libnew.globals import NewRTGlobals


def _emit_team_state_init(
    rb: RuntimeBuilder, b: IRBuilder, gvs: NewRTGlobals, cond: Value, spmd: Value
) -> None:
    """Broadcast-style initialization of the team state by one thread."""
    team = gvs.team_state
    writes = (
        (gvs.off_nthreads, ICV_DEFAULTS["nthreads_var"]),
        (gvs.off_levels, ICV_DEFAULTS["levels_var"]),
        (gvs.off_active_levels, ICV_DEFAULTS["active_levels_var"]),
        (gvs.off_has_thread_state, 0),
        (gvs.off_done, 0),
    )
    for offset, value in writes:
        addr = b.ptradd(team, offset)
        rb.emit_conditional_write(b, addr, b.i32(value), cond)
    fn_addr = b.ptradd(team, gvs.off_parallel_region_fn)
    rb.emit_conditional_write(b, fn_addr, b.i64(0), cond)
    size_addr = b.ptradd(team, gvs.off_parallel_team_size)
    rb.emit_conditional_write(b, size_addr, b.block_dim(), cond)
    flag_val = b.select(
        b.icmp("ne", spmd, b.i32(0)), b.i32(1), b.i32(0), "spmd.val"
    )
    rb.emit_conditional_write(b, gvs.is_spmd_mode, flag_val, cond)


def _emit_post_init_assumes(
    rb: RuntimeBuilder, b: IRBuilder, gvs: NewRTGlobals, spmd_value: Value
) -> None:
    """Fig. 8b: pin the broadcast state after the aligned barrier."""
    team = gvs.team_state
    for offset, value, what in (
        (gvs.off_levels, 0, "levels_var is 0 after init"),
        (gvs.off_active_levels, 0, "active_levels_var is 0 after init"),
        (gvs.off_has_thread_state, 0, "no thread states after init"),
    ):
        addr = b.ptradd(team, offset)
        loaded = b.load(I32, addr)
        rb.emit_assert(b, b.icmp("eq", loaded, b.i32(value)), what)
    # The mode flag was broadcast from the by-value init argument
    # (§III-A) and the team size from the launch geometry — both are
    # invariant-value facts for §IV-B4.
    flag = b.load(I32, gvs.is_spmd_mode)
    rb.emit_assert(b, b.icmp("eq", flag, spmd_value), "SPMD flag matches init mode")
    size_addr = b.ptradd(team, gvs.off_parallel_team_size)
    size = b.load(I32, size_addr)
    rb.emit_assert(
        b, b.icmp("eq", size, b.block_dim()), "team size matches launch geometry"
    )


def build_target_init(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    func, b = rb.define("__kmpc_target_init", I32, [I32], ["is_spmd"])
    is_spmd = func.args[0]
    rb.emit_trace(b, "__kmpc_target_init")

    spmd_block = func.add_block("spmd")
    generic_block = func.add_block("generic")
    b.cond_br(b.icmp("ne", is_spmd, b.i32(0)), spmd_block, generic_block)

    # ---- SPMD path -----------------------------------------------------------
    b.set_insert_point(spmd_block)
    tid = b.thread_id()
    is_zero = b.icmp("eq", tid, b.i32(0), "is.tid0")
    _emit_team_state_init(rb, b, gvs, is_zero, is_spmd)
    slot_addr = b.array_gep(gvs.thread_states, I64, tid, "slot.addr")
    b.store(b.i64(0), slot_addr)
    top_addr = b.array_gep(gvs.smem_stack_tops, I32, tid, "top.addr")
    b.store(b.i32(0), top_addr)
    rb.emit_team_barrier(b)
    _emit_post_init_assumes(rb, b, gvs, b.i32(1))
    b.ret(b.i32(0))

    # ---- generic path -----------------------------------------------------------
    b.set_insert_point(generic_block)
    tid_g = b.thread_id()
    bdim = b.block_dim()
    main_id = b.sub(bdim, b.i32(1), "main.id")
    is_main = b.icmp("eq", tid_g, main_id, "is.main")
    _emit_team_state_init(rb, b, gvs, is_main, is_spmd)
    slot_addr_g = b.array_gep(gvs.thread_states, I64, tid_g, "slot.addr")
    b.store(b.i64(0), slot_addr_g)
    top_addr_g = b.array_gep(gvs.smem_stack_tops, I32, tid_g, "top.addr")
    b.store(b.i32(0), top_addr_g)
    rb.emit_team_barrier(b)
    _emit_post_init_assumes(rb, b, gvs, b.i32(0))

    worker_entry = func.add_block("worker.loop")
    main_exit = func.add_block("main.cont")
    b.cond_br(is_main, main_exit, worker_entry)

    # ---- worker state machine (Bertolli-style control loop) ---------------------
    b.set_insert_point(worker_entry)
    b.barrier()  # unaligned: pairs with wake/terminate barriers elsewhere
    done_addr = b.ptradd(gvs.team_state, gvs.off_done, "done.addr")
    done = b.load(I32, done_addr, "done")
    work_check = func.add_block("worker.check")
    worker_exit = func.add_block("worker.exit")
    b.cond_br(b.icmp("ne", done, b.i32(0)), worker_exit, work_check)

    b.set_insert_point(work_check)
    fn_addr = b.ptradd(gvs.team_state, gvs.off_parallel_region_fn, "fn.addr")
    fn = b.load(I64, fn_addr, "fn")
    do_work = func.add_block("worker.work")
    join = func.add_block("worker.join")
    b.cond_br(b.icmp("ne", fn, b.i64(0)), do_work, join)

    b.set_insert_point(do_work)
    args_addr = b.ptradd(gvs.team_state, gvs.off_parallel_args, "args.addr")
    args = b.load(I64, args_addr, "args")
    args_ptr = b.cast("inttoptr", args, PTR, "args.ptr")
    b.call_indirect(fn, [tid_g, args_ptr], VOID)
    b.br(join)

    b.set_insert_point(join)
    b.barrier()  # join barrier: pairs with the main thread's join barrier
    b.br(worker_entry)

    b.set_insert_point(worker_exit)
    b.ret(b.i32(1))

    b.set_insert_point(main_exit)
    b.ret(b.i32(0))


def build_target_deinit(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    func, b = rb.define("__kmpc_target_deinit", VOID, [I32], ["is_spmd"])
    is_spmd = func.args[0]
    rb.emit_trace(b, "__kmpc_target_deinit")

    spmd_block = func.add_block("spmd")
    generic_block = func.add_block("generic")
    b.cond_br(b.icmp("ne", is_spmd, b.i32(0)), spmd_block, generic_block)

    b.set_insert_point(spmd_block)
    rb.emit_team_barrier(b)
    b.ret()

    # Generic: only the main thread reaches deinit; signal termination.
    b.set_insert_point(generic_block)
    done_addr = b.ptradd(gvs.team_state, gvs.off_done, "done.addr")
    b.store(b.i32(1), done_addr)
    b.barrier()  # wake workers so they observe `done` and exit
    b.ret()
