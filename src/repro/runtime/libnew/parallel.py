"""``__kmpc_parallel_51`` — the parallel-region entry point.

Three execution paths (paper §III-B/C and Fig. 3/4):

* *nested* (``levels_var > 0``): the encountering thread serializes the
  region alone inside a fresh data environment, which requires an
  on-demand thread ICV state — this is the pattern that is "strongly
  discouraged" because it blocks state elimination;
* *SPMD top-level*: all threads are already active; thread 0 bumps the
  team ``levels_var`` through a conditional-pointer write, aligned
  barriers publish the state around the region body, and assumptions
  pin the published values;
* *generic top-level*: only the main thread executes here; it
  publishes the outlined function to the state machine, wakes the
  workers, participates itself, and joins.

Fault surface (see :mod:`repro.faults`): a ``rt_trap`` site fires at
the categorized ``__kmpc_parallel_51`` call itself, before any of the
three paths run; a ``barrier_skip`` site aimed at the SPMD publishing
barriers leaves teammates reading unpublished parallel state, and
aimed at the generic wake/join barriers it detaches the main thread
from its workers — both surface as
:class:`~repro.vgpu.errors.BarrierDivergence` under
``VirtualGPU(sanitize=True)`` (the missing-arrival detector for a
thread that runs ahead to completion, the different-aligned-barrier
detector when it re-converges one barrier late).  The checks stay in
the simulator's phase driver on purpose: adding IR-level asserts here
would change the instruction counts the overhead figures pin.
"""

from __future__ import annotations

from repro.ir.types import I32, I64, PTR, VOID
from repro.runtime.common import RuntimeBuilder
from repro.runtime.libnew.globals import NewRTGlobals


def build_parallel_51(rb: RuntimeBuilder, gvs: NewRTGlobals) -> None:
    module = rb.module
    lookup = module.get_function("__omp_lookup_icv_state")
    push = module.get_function("__omp_push_thread_state")
    pop = module.get_function("__omp_pop_thread_state")

    func, b = rb.define("__kmpc_parallel_51", VOID, [PTR, PTR], ["fn", "args"])
    fn, args = func.args
    rb.emit_trace(b, "__kmpc_parallel_51")

    state = b.call(lookup, [], "icv.state")
    levels_addr = b.ptradd(state, gvs.off_levels, "levels.addr")
    levels = b.load(I32, levels_addr, "levels")
    nested = b.icmp("sgt", levels, b.i32(0), "nested")

    nested_block = func.add_block("nested")
    top_block = func.add_block("top")
    b.cond_br(nested, nested_block, top_block)

    # ---- nested: serialized region with a private data environment -----------
    b.set_insert_point(nested_block)
    b.call(push, [])
    new_state = b.call(lookup, [], "icv.state.nested")
    new_levels_addr = b.ptradd(new_state, gvs.off_levels, "levels.addr.nested")
    b.store(b.add(levels, b.i32(1)), new_levels_addr)
    b.call_indirect(fn, [b.i32(0), args], VOID)
    b.call(pop, [])
    b.ret()

    # ---- top level: dispatch on execution mode ---------------------------------
    b.set_insert_point(top_block)
    spmd = b.load(I32, gvs.is_spmd_mode, "spmd")
    spmd_block = func.add_block("spmd")
    generic_block = func.add_block("generic")
    b.cond_br(b.icmp("ne", spmd, b.i32(0)), spmd_block, generic_block)

    # ---- SPMD -----------------------------------------------------------------
    b.set_insert_point(spmd_block)
    tid = b.thread_id()
    is_zero = b.icmp("eq", tid, b.i32(0), "is.tid0")
    team_levels = b.ptradd(gvs.team_state, gvs.off_levels, "team.levels")
    # Entry barrier *before* the state update: threads may still be
    # reading the pre-region state (e.g. the post-init assumptions).
    rb.emit_team_barrier(b)
    rb.emit_conditional_write(b, team_levels, b.i32(1), is_zero)
    rb.emit_team_barrier(b)
    in_region = b.load(I32, team_levels, "levels.in")
    rb.emit_assert(b, b.icmp("eq", in_region, b.i32(1)), "levels_var is 1 in parallel")
    b.call_indirect(fn, [tid, args], VOID)
    rb.emit_team_barrier(b)
    rb.emit_conditional_write(b, team_levels, b.i32(0), is_zero)
    rb.emit_team_barrier(b)
    after_region = b.load(I32, team_levels, "levels.out")
    rb.emit_assert(b, b.icmp("eq", after_region, b.i32(0)), "levels_var is 0 after parallel")
    b.ret()

    # ---- generic: main thread drives the state machine ---------------------------
    b.set_insert_point(generic_block)
    team = gvs.team_state
    fn_addr = b.ptradd(team, gvs.off_parallel_region_fn, "fn.addr")
    args_addr = b.ptradd(team, gvs.off_parallel_args, "args.addr")
    size_addr = b.ptradd(team, gvs.off_parallel_team_size, "size.addr")
    levels_team = b.ptradd(team, gvs.off_levels, "levels.addr.team")
    bdim = b.block_dim()
    b.store(b.cast("ptrtoint", fn, I64), fn_addr)
    b.store(b.cast("ptrtoint", args, I64), args_addr)
    b.store(bdim, size_addr)
    b.store(b.i32(1), levels_team)
    b.barrier()  # wake the workers
    main_tid = b.sub(bdim, b.i32(1), "main.tid")
    b.call_indirect(fn, [main_tid, args], VOID)
    b.barrier()  # join
    b.store(b.i64(0), fn_addr)
    b.store(b.i32(0), levels_team)
    b.ret()
