"""Internal control variables (ICVs) and their state layout.

The ICV state struct mirrors the paper's Fig. 3: one team-wide copy
lives in static shared memory, and threads that modify their data
environment get on-demand private copies via the shared-memory stack
(§III-C).  The field list follows the LLVM deviceRTL ``ICVStateTy``.
"""

from __future__ import annotations

from typing import Dict

from repro.memory.layout import DATA_LAYOUT
from repro.ir.types import I32, StructType

#: Field order matters: offsets are ABI for the field-sensitive access
#: analysis tests.
ICV_STATE = StructType(
    "ICVState",
    (
        ("nthreads_var", I32),
        ("levels_var", I32),
        ("active_levels_var", I32),
        ("max_active_levels_var", I32),
        ("run_sched_var", I32),
        ("run_sched_chunk_var", I32),
    ),
)

#: Default values installed by ``__kmpc_target_init``.
ICV_DEFAULTS: Dict[str, int] = {
    "nthreads_var": 0,  # 0 = use the launch configuration
    "levels_var": 0,
    "active_levels_var": 0,
    "max_active_levels_var": 1,
    "run_sched_var": 1,  # static
    "run_sched_chunk_var": 1,
}


def icv_offset(field: str) -> int:
    """Byte offset of an ICV within the state struct."""
    return DATA_LAYOUT.field_offset(ICV_STATE, field)


def icv_state_size() -> int:
    return DATA_LAYOUT.size_of(ICV_STATE)
