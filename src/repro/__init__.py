"""repro — simulated reproduction of the IPDPS'22 OpenMP GPU runtime co-design paper.

Top-level convenience re-exports; see DESIGN.md for the system map.
"""

__version__ = "1.0.0"
