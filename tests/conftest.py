"""Shared fixtures and IR-construction helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import (
    F64,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR,
    PTR_GLOBAL,
    VOID,
    verify_module,
)


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def builder(module):
    """A builder positioned at the entry of @f(i32 %x) -> i32."""
    func = module.add_function(
        Function("f", FunctionType(I32, (I32,)), arg_names=["x"])
    )
    entry = func.add_block("entry")
    return IRBuilder(module, entry)


def make_function(module, name="f", ret=I32, params=(I32,), arg_names=None):
    """Create a function with an entry block; returns (func, builder)."""
    func = module.add_function(
        Function(name, FunctionType(ret, tuple(params)), arg_names=arg_names)
    )
    entry = func.add_block("entry")
    return func, IRBuilder(module, entry)


def make_kernel(module, name="kern", params=(PTR_GLOBAL, I64), arg_names=None):
    """Create a kernel function with an entry block."""
    func, b = make_function(module, name, VOID, params, arg_names)
    func.attrs.add("kernel")
    return func, b


def finish(module):
    """Verify and return the module (used as a one-line test epilogue)."""
    verify_module(module)
    return module
