"""Shared fixtures and IR-construction helpers for the test suite."""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_compile_cache(tmp_path_factory):
    """Point the on-disk compile cache at a session tmpdir so test runs
    never leak ``.repro-cache/`` into the repository."""
    from repro.toolchain import cache as toolchain_cache

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    toolchain_cache.reset_compile_cache()
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    toolchain_cache.reset_compile_cache()


@pytest.fixture(scope="session", autouse=True)
def _isolated_bench_history(tmp_path_factory):
    """Point the benchmark history store at a session tmpdir so tests
    that drive the bench CLIs never append to ``.repro-bench/``."""
    old = os.environ.get("REPRO_BENCH_HISTORY_DIR")
    os.environ["REPRO_BENCH_HISTORY_DIR"] = str(
        tmp_path_factory.mktemp("repro-bench")
    )
    yield
    if old is None:
        os.environ.pop("REPRO_BENCH_HISTORY_DIR", None)
    else:
        os.environ["REPRO_BENCH_HISTORY_DIR"] = old

from repro.ir import (
    F64,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR,
    PTR_GLOBAL,
    VOID,
    verify_module,
)


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def builder(module):
    """A builder positioned at the entry of @f(i32 %x) -> i32."""
    func = module.add_function(
        Function("f", FunctionType(I32, (I32,)), arg_names=["x"])
    )
    entry = func.add_block("entry")
    return IRBuilder(module, entry)


def make_function(module, name="f", ret=I32, params=(I32,), arg_names=None):
    """Create a function with an entry block; returns (func, builder)."""
    func = module.add_function(
        Function(name, FunctionType(ret, tuple(params)), arg_names=arg_names)
    )
    entry = func.add_block("entry")
    return func, IRBuilder(module, entry)


def make_kernel(module, name="kern", params=(PTR_GLOBAL, I64), arg_names=None):
    """Create a kernel function with an entry block."""
    func, b = make_function(module, name, VOID, params, arg_names)
    func.attrs.add("kernel")
    return func, b


def finish(module):
    """Verify and return the module (used as a one-line test epilogue)."""
    verify_module(module)
    return module
