"""Tests for the centralized REPRO_* environment knob registry."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import envconfig


class TestFlagParsing:
    @pytest.mark.parametrize("raw", ["0", "off", "false", "no", "", "OFF", "False"])
    def test_falsy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert envconfig.trace_enabled() is False

    @pytest.mark.parametrize("raw", ["1", "on", "true", "yes", "anything"])
    def test_truthy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert envconfig.trace_enabled() is True

    def test_unset_uses_registry_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert envconfig.trace_enabled() is False  # default "0"
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert envconfig.cache_enabled() is True  # default "1"


class TestIntParsing:
    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "7")
        assert envconfig.sim_jobs() == 7

    def test_malformed_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "lots")
        assert envconfig.sim_jobs() == 1

    def test_unset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_SIZE", raising=False)
        assert envconfig.cache_size() == 128


class TestStrParsing:
    def test_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert envconfig.cache_dir() == "/tmp/somewhere"

    def test_unset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert envconfig.sim_engine() == "decoded"


class TestFloatParsing:
    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_S", "2.5")
        assert envconfig.watchdog_s() == 2.5

    def test_malformed_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_S", "soon")
        assert envconfig.watchdog_s() == 0.0

    def test_negative_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_S", "-3")
        assert envconfig.watchdog_s() == 0.0

    def test_unset_default_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_S", raising=False)
        assert envconfig.watchdog_s() == 0.0


class TestRobustnessKnobs:
    def test_faults_spec_default_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert envconfig.faults_spec() == ""

    def test_faults_spec_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "rt_trap:n=3;seed=9")
        assert envconfig.faults_spec() == "rt_trap:n=3;seed=9"

    def test_sanitize_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert envconfig.sanitize_enabled() is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert envconfig.sanitize_enabled() is True


class TestRegistry:
    def test_undocumented_knob_rejected(self):
        with pytest.raises(KeyError):
            envconfig.env_flag("REPRO_UNDOCUMENTED")
        with pytest.raises(KeyError):
            envconfig.env_int("REPRO_NOPE")
        with pytest.raises(KeyError):
            envconfig.env_str("REPRO_NADA")

    def test_expected_knobs_present(self):
        expected = {
            "REPRO_SIM_ENGINE", "REPRO_SIM_JOBS", "REPRO_JOBS",
            "REPRO_CACHE", "REPRO_CACHE_DIR", "REPRO_CACHE_DISK",
            "REPRO_CACHE_SIZE", "REPRO_TRACE",
            "REPRO_FAULTS", "REPRO_SANITIZE", "REPRO_WATCHDOG_S",
            "REPRO_SERVE_WORKERS", "REPRO_SERVE_QUEUE",
            "REPRO_SERVE_MAX_INFLIGHT",
            "REPRO_SERVE_RETRIES", "REPRO_SERVE_BACKOFF_S",
            "REPRO_SERVE_BREAKER_THRESHOLD", "REPRO_SERVE_DRAIN_S",
            "REPRO_BENCH_HISTORY_DIR", "REPRO_BENCH_REGRESSION_PCT",
            "REPRO_WARP_IF_CONVERT",
        }
        assert expected == set(envconfig.KNOBS)

    def test_no_stray_env_reads_outside_registry(self):
        """Every ``REPRO_*`` environment variable mentioned anywhere in
        the source tree must be a documented knob — the point of having
        one config module."""
        src = Path(envconfig.__file__).resolve().parent
        names = set()
        for path in src.rglob("*.py"):
            names |= set(re.findall(r"REPRO_[A-Z_]+", path.read_text()))
        assert names <= set(envconfig.KNOBS), (
            f"undocumented REPRO_* names in src: "
            f"{sorted(names - set(envconfig.KNOBS))}"
        )

    def test_describe_env_mentions_every_knob(self):
        text = envconfig.describe_env()
        for name in envconfig.KNOBS:
            assert name in text


class TestServeKnobs:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_SERVE_WORKERS", "REPRO_SERVE_QUEUE",
                     "REPRO_SERVE_MAX_INFLIGHT"):
            monkeypatch.delenv(name, raising=False)
        assert envconfig.serve_workers() == 4
        assert envconfig.serve_queue() == 16
        assert envconfig.serve_max_in_flight() == 0  # 0 = derived

    def test_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "9")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "2")
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "5")
        assert envconfig.serve_workers() == 9
        assert envconfig.serve_queue() == 2
        assert envconfig.serve_max_in_flight() == 5

    def test_clamping_and_malformed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "0")
        assert envconfig.serve_workers() == 1  # at least one worker
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "-4")
        assert envconfig.serve_queue() == 0
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "many")
        assert envconfig.serve_max_in_flight() == 0  # fallback default

    def test_service_resolvers_delegate(self, monkeypatch):
        from repro.serve import (
            resolve_serve_max_in_flight,
            resolve_serve_queue,
            resolve_serve_workers,
        )

        monkeypatch.setenv("REPRO_SERVE_WORKERS", "6")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "7")
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "8")
        assert resolve_serve_workers() == 6
        assert resolve_serve_queue() == 7
        assert resolve_serve_max_in_flight() == 8
        # Explicit arguments win over the environment.
        assert resolve_serve_workers(2) == 2
        assert resolve_serve_queue(0) == 0
        assert resolve_serve_max_in_flight(1) == 1


class TestResilienceKnobs:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_SERVE_RETRIES", "REPRO_SERVE_BACKOFF_S",
                     "REPRO_SERVE_BREAKER_THRESHOLD", "REPRO_SERVE_DRAIN_S"):
            monkeypatch.delenv(name, raising=False)
        assert envconfig.serve_retries() == 2  # old one-shot retry
        assert envconfig.serve_backoff_s() == 0.0
        assert envconfig.serve_breaker_threshold() == 5
        assert envconfig.serve_drain_s() == 0.0  # 0 = unbounded drain

    def test_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_RETRIES", "4")
        monkeypatch.setenv("REPRO_SERVE_BACKOFF_S", "0.25")
        monkeypatch.setenv("REPRO_SERVE_BREAKER_THRESHOLD", "3")
        monkeypatch.setenv("REPRO_SERVE_DRAIN_S", "1.5")
        assert envconfig.serve_retries() == 4
        assert envconfig.serve_backoff_s() == 0.25
        assert envconfig.serve_breaker_threshold() == 3
        assert envconfig.serve_drain_s() == 1.5

    def test_clamping_and_malformed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_RETRIES", "0")
        assert envconfig.serve_retries() == 1  # at least one attempt
        monkeypatch.setenv("REPRO_SERVE_BACKOFF_S", "-1")
        assert envconfig.serve_backoff_s() == 0.0
        monkeypatch.setenv("REPRO_SERVE_BREAKER_THRESHOLD", "-2")
        assert envconfig.serve_breaker_threshold() == 0  # 0 = disabled
        monkeypatch.setenv("REPRO_SERVE_DRAIN_S", "soon")
        assert envconfig.serve_drain_s() == 0.0  # fallback default

    def test_policy_resolvers_delegate(self, monkeypatch):
        from repro.serve.resilience import BreakerPolicy, RetryPolicy
        from repro.serve.service import resolve_serve_drain

        monkeypatch.setenv("REPRO_SERVE_RETRIES", "3")
        monkeypatch.setenv("REPRO_SERVE_BACKOFF_S", "0.1")
        monkeypatch.setenv("REPRO_SERVE_BREAKER_THRESHOLD", "7")
        monkeypatch.setenv("REPRO_SERVE_DRAIN_S", "2.0")
        policy = RetryPolicy.resolve()
        assert policy.max_attempts == 3
        assert policy.backoff_base_s == 0.1
        assert BreakerPolicy.resolve().threshold == 7
        assert resolve_serve_drain() == 2.0
        # Explicit arguments win over the environment.
        assert RetryPolicy.resolve(RetryPolicy(max_attempts=1)).max_attempts == 1
        assert BreakerPolicy.resolve(BreakerPolicy(threshold=0)).threshold == 0
        assert resolve_serve_drain(0.5) == 0.5
        # 0 / unset means "no drain deadline".
        monkeypatch.setenv("REPRO_SERVE_DRAIN_S", "0")
        assert resolve_serve_drain() is None


class TestBenchKnobs:
    def test_history_dir_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_HISTORY_DIR", raising=False)
        assert envconfig.bench_history_dir() == ".repro-bench"

    def test_history_dir_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", "/tmp/perf-store")
        assert envconfig.bench_history_dir() == "/tmp/perf-store"

    def test_regression_pct_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_REGRESSION_PCT", raising=False)
        assert envconfig.bench_regression_pct() == 5.0

    def test_regression_pct_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_PCT", "2.5")
        assert envconfig.bench_regression_pct() == 2.5

    def test_regression_pct_malformed_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_PCT", "strict")
        assert envconfig.bench_regression_pct() == 5.0

    def test_regression_pct_negative_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_PCT", "-10")
        assert envconfig.bench_regression_pct() == 0.0

    def test_history_consumers_delegate(self, monkeypatch, tmp_path):
        from repro.bench import history

        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(tmp_path / "h"))
        assert history.history_path() == str(tmp_path / "h" / "history.jsonl")


class TestWarpKnobs:
    def test_warp_engine_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp")
        assert envconfig.sim_engine() == "warp"

    def test_if_convert_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARP_IF_CONVERT", raising=False)
        assert envconfig.warp_if_convert() is True

    @pytest.mark.parametrize("raw", ["0", "off", "false", "no"])
    def test_if_convert_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WARP_IF_CONVERT", raw)
        assert envconfig.warp_if_convert() is False

    @pytest.mark.parametrize("raw", ["1", "on", "true", "yes"])
    def test_if_convert_enable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WARP_IF_CONVERT", raw)
        assert envconfig.warp_if_convert() is True


class TestDelegation:
    """The legacy per-subsystem resolvers now route through envconfig."""

    def test_sim_engine_resolver(self, monkeypatch):
        from repro.vgpu.config import resolve_sim_engine

        monkeypatch.setenv("REPRO_SIM_ENGINE", "legacy")
        assert resolve_sim_engine() == "legacy"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp")
        assert resolve_sim_engine() == "warp"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.raises(ValueError):
            resolve_sim_engine()

    def test_sim_jobs_resolver(self, monkeypatch):
        from repro.vgpu.config import resolve_sim_jobs

        monkeypatch.setenv("REPRO_SIM_JOBS", "4")
        assert resolve_sim_jobs() == 4
        assert resolve_sim_jobs(teams=2) == 2

    def test_jobs_resolver(self, monkeypatch):
        from repro.toolchain.service import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(cells=2) == 2

    def test_cache_construction(self, monkeypatch):
        from repro.toolchain import cache as toolchain_cache

        monkeypatch.setenv("REPRO_CACHE", "0")
        toolchain_cache.reset_compile_cache()
        try:
            assert toolchain_cache.get_compile_cache() is None
            monkeypatch.setenv("REPRO_CACHE", "1")
            monkeypatch.setenv("REPRO_CACHE_DISK", "0")
            monkeypatch.setenv("REPRO_CACHE_SIZE", "5")
            toolchain_cache.reset_compile_cache()
            cache = toolchain_cache.get_compile_cache()
            assert cache is not None
            assert cache.disk_dir is None
            assert cache.max_entries == 5
        finally:
            toolchain_cache.reset_compile_cache()
