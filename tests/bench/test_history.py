"""History store + noise-aware regression compare (``bench compare``)."""

from __future__ import annotations

import json

import pytest

from repro.bench import history, record


def _record(benchmark="micro", metrics=None, machine=None, run_id=None, ts=None):
    rec = record.make_record(
        benchmark,
        config={"smoke": True},
        metrics=metrics or {},
        run_id=run_id,
        timestamp=ts,
    )
    if machine is not None:
        rec["meta"] = dict(rec["meta"], machine=machine)
    return rec


def _model_metric(value):
    return record.metric(value, better=record.BETTER_LOWER,
                         kind=record.KIND_MODEL)


def _wall_metric(value, stddev=0.0, n=3, better=record.BETTER_LOWER):
    return record.metric(value, stddev=stddev, n=n, better=better,
                         kind=record.KIND_WALL)


class TestRecordSchema:
    def test_stats_mean_stddev(self):
        s = record.stats([1.0, 2.0, 3.0])
        assert s["mean"] == pytest.approx(2.0)
        assert s["stddev"] == pytest.approx(1.0)
        assert (s["min"], s["max"], s["n"]) == (1.0, 3.0, 3)

    def test_stats_single_sample_has_zero_stddev(self):
        assert record.stats([4.2])["stddev"] == 0.0

    def test_metric_validates_direction_and_kind(self):
        with pytest.raises(ValueError):
            record.metric(1.0, better="sideways")
        with pytest.raises(ValueError):
            record.metric(1.0, kind="vibes")

    def test_make_record_envelope(self):
        rec = _record(metrics={"model/x": _model_metric(10.0)})
        assert rec["schema_version"] == record.SCHEMA_VERSION
        assert rec["meta"]["machine"]
        assert rec["run_id"].startswith("micro-")


class TestStore:
    def test_append_and_load_roundtrip(self, tmp_path):
        d = str(tmp_path / "hist")
        a = _record(run_id="micro-1-aaaa")
        b = _record(run_id="micro-2-bbbb")
        history.append_record(a, d)
        history.append_record(b, d)
        loaded = history.load_records(d)
        assert [r["run_id"] for r in loaded] == ["micro-1-aaaa", "micro-2-bbbb"]

    def test_load_skips_garbage_and_foreign_schema(self, tmp_path):
        d = str(tmp_path / "hist")
        history.append_record(_record(run_id="micro-1-aaaa"), d)
        with open(history.history_path(d), "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"schema_version": 99, "metrics": {}}) + "\n")
        assert len(history.load_records(d)) == 1

    def test_missing_store_is_empty(self, tmp_path):
        assert history.load_records(str(tmp_path / "nope")) == []


class TestCompare:
    def test_within_noise_jitter_is_tolerated(self):
        """Acceptance: jitter inside max(rel, k*stddev) never fails."""
        base = _record(metrics={
            "wall/a_s": _wall_metric(1.00, stddev=0.05),
            "wall/b_s": _wall_metric(2.00, stddev=0.10),
        })
        # 8% worse, but within 2*stddev — and 3% worse, within rel 5%.
        new = _record(metrics={
            "wall/a_s": _wall_metric(1.08, stddev=0.05),
            "wall/b_s": _wall_metric(2.06, stddev=0.10),
        })
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["ok"] is True
        assert result["regressions"] == []
        assert result["geomean"]["wall"] == pytest.approx(1.0)

    def test_geomean_regression_fails(self):
        """Acceptance: a synthetic >threshold regression trips the gate."""
        base = _record(metrics={
            "model/x": _model_metric(100.0),
            "model/y": _model_metric(50.0),
        })
        new = _record(metrics={
            "model/x": _model_metric(130.0),  # 30% slower, stddev 0
            "model/y": _model_metric(60.0),   # 20% slower
        })
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["ok"] is False
        assert set(result["regressions"]) == {"model/x", "model/y"}
        assert result["geomean"]["model"] < 0.95

    def test_improvements_never_fail(self):
        base = _record(metrics={"model/x": _model_metric(100.0)})
        new = _record(metrics={"model/x": _model_metric(50.0)})
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["ok"] is True
        assert result["improvements"] == ["model/x"]

    def test_higher_is_better_orientation(self):
        base = _record(metrics={
            "wall/rps": _wall_metric(100.0, better=record.BETTER_HIGHER),
        })
        new = _record(metrics={
            "wall/rps": _wall_metric(80.0, better=record.BETTER_HIGHER),
        })
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["ok"] is False
        assert result["regressions"] == ["wall/rps"]

    def test_single_noisy_metric_cannot_fail_geomean_of_many(self):
        """One within-noise wobble among stable metrics stays neutral."""
        metrics = {f"model/m{i}": _model_metric(10.0) for i in range(9)}
        base = _record(metrics=dict(metrics, **{
            "wall/hot_s": _wall_metric(1.0, stddev=0.5),
        }))
        new = _record(metrics=dict(metrics, **{
            "wall/hot_s": _wall_metric(1.9, stddev=0.5),  # < 2*stddev
        }))
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["ok"] is True

    def test_cross_machine_records_skip_wall_metrics(self):
        base = _record(machine="m1", metrics={
            "wall/a_s": _wall_metric(1.0),
            "model/x": _model_metric(10.0),
        })
        new = _record(machine="m2", metrics={
            "wall/a_s": _wall_metric(9.0),  # huge, but incomparable
            "model/x": _model_metric(10.0),
        })
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["ok"] is True
        assert result["wall_comparable"] is False
        assert result["metrics_skipped_wall"] == 1
        assert result["metrics_compared"] == 1

    def test_intersection_only(self):
        """A quick run compares against a full baseline on shared cells."""
        base = _record(metrics={
            "model/x": _model_metric(10.0),
            "model/only_in_full": _model_metric(5.0),
        })
        new = _record(metrics={"model/x": _model_metric(10.0)})
        result = history.compare_records(base, new, rel_pct=5.0)
        assert result["metrics_compared"] == 1
        assert result["ok"] is True


class TestBaseline:
    def test_find_baseline_prefers_latest_earlier_comparable(self):
        a = _record(run_id="micro-1-a", ts=1.0,
                    metrics={"model/x": _model_metric(1.0)})
        b = _record(run_id="micro-2-b", ts=2.0,
                    metrics={"model/x": _model_metric(1.0)})
        c = _record(run_id="micro-3-c", ts=3.0,
                    metrics={"model/x": _model_metric(1.0)})
        assert history.find_baseline([a, b, c], c)["run_id"] == "micro-2-b"

    def test_find_baseline_requires_metric_overlap(self):
        a = _record(run_id="micro-1-a", ts=1.0,
                    metrics={"model/other": _model_metric(1.0)})
        c = _record(run_id="micro-3-c", ts=3.0,
                    metrics={"model/x": _model_metric(1.0)})
        assert history.find_baseline([a, c], c) is None

    def test_baseline_compare_empty_history_is_ok(self, tmp_path):
        outcome = history.baseline_compare(str(tmp_path / "hist"))
        assert outcome == {"ok": True, "results": []}

    def test_baseline_compare_skips_without_baseline(self, tmp_path):
        d = str(tmp_path / "hist")
        history.append_record(
            _record(metrics={"model/x": _model_metric(1.0)}), d)
        outcome = history.baseline_compare(d, root=str(tmp_path))
        assert outcome["ok"] is True
        assert outcome["results"][0]["skipped"] == "no comparable baseline"

    def test_baseline_compare_gates_on_history_pair(self, tmp_path):
        d = str(tmp_path / "hist")
        history.append_record(_record(
            run_id="micro-1-a", ts=1.0,
            metrics={"model/x": _model_metric(100.0)}), d)
        history.append_record(_record(
            run_id="micro-2-b", ts=2.0,
            metrics={"model/x": _model_metric(200.0)}), d)
        outcome = history.baseline_compare(d, rel_pct=5.0, root=str(tmp_path))
        assert outcome["ok"] is False
        assert outcome["results"][0]["baseline_source"] == "history"

    def test_tracked_baseline_fallback(self, tmp_path):
        """With no earlier history record the committed BENCH_micro.json
        becomes the baseline."""
        d = str(tmp_path / "hist")
        cell = {
            "construct": "barrier", "category": "sync",
            "runtime": "newrt", "engine": "decoded",
            "teams": 2, "threads": 4, "workload": 4,
            "calls": 16, "cycles": 384, "cycles_per_call": 24.0,
            "barriers_aligned": 0, "barriers_unaligned": 8,
            "global_fallbacks": 0,
        }
        tracked = {
            "benchmark": "micro", "meta": record.meta_block(),
            "config": {"smoke": False}, "cells": [cell], "constructs": {},
        }
        (tmp_path / "BENCH_micro.json").write_text(json.dumps(tracked))
        regressed = dict(cell, cycles_per_call=48.0, cycles=768)
        new_report = dict(tracked, config={"smoke": True}, cells=[regressed])
        history.append_record(history.record_from_report(new_report), d)
        outcome = history.baseline_compare(d, rel_pct=5.0, root=str(tmp_path))
        assert outcome["ok"] is False
        assert outcome["results"][0]["baseline_source"] == "tracked"


class TestRecordFromReport:
    def test_micro_report_metrics(self):
        report = {
            "benchmark": "micro", "meta": record.meta_block(),
            "config": {"smoke": True},
            "cells": [
                {"construct": "barrier", "runtime": "newrt",
                 "engine": "decoded", "teams": 2, "threads": 4,
                 "workload": 4, "cycles_per_call": 24.0},
                {"construct": "barrier", "runtime": "newrt",
                 "engine": "legacy", "teams": 2, "threads": 4,
                 "workload": 4, "cycles_per_call": 24.0},
                {"construct": "worksharing", "runtime": "newrt",
                 "engine": "decoded", "teams": 2, "threads": 4,
                 "workload": 4, "cycles_per_call": None},
            ],
        }
        rec = history.record_from_report(report)
        assert set(rec["metrics"]) == {"model/barrier/newrt/t2x4/w4"}
        metric = rec["metrics"]["model/barrier/newrt/t2x4/w4"]
        assert metric["kind"] == record.KIND_MODEL
        assert metric["stddev"] == 0.0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            history.record_from_report({"benchmark": "mystery"})

    def test_repeats_excluded_from_config(self):
        report = {
            "benchmark": "micro", "meta": record.meta_block(),
            "config": {"smoke": True, "repeats": 3}, "cells": [],
        }
        assert "repeats" not in history.record_from_report(report)["config"]


class TestCompareCLI:
    def _seed(self, directory, values):
        for i, value in enumerate(values):
            history.append_record(_record(
                run_id=f"micro-{i}-r", ts=float(i),
                metrics={"model/x": _model_metric(value)}), directory)

    def test_cli_exits_nonzero_on_regression(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(tmp_path / "h"))
        self._seed(str(tmp_path / "h"), [100.0, 200.0])
        assert main(["prog", "compare", "--baseline"]) == 1

    def test_cli_ok_on_stable_history(self, tmp_path, monkeypatch, capsys):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(tmp_path / "h"))
        self._seed(str(tmp_path / "h"), [100.0, 100.0])
        assert main(["prog", "compare"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_cli_two_run_diff(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(tmp_path / "h"))
        self._seed(str(tmp_path / "h"), [100.0, 200.0])
        assert main(["prog", "compare", "--run-a", "micro-0-r",
                     "--run-b", "micro-1-r"]) == 1
        assert main(["prog", "compare", "--run-a", "micro-1-r",
                     "--run-b", "micro-0-r"]) == 0
        assert main(["prog", "compare", "--run-a", "micro-0-r"]) == 2
        assert main(["prog", "compare", "--run-a", "micro-0-r",
                     "--run-b", "nope"]) == 2

    def test_cli_empty_history_passes(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(tmp_path / "h"))
        assert main(["prog", "compare", "--baseline"]) == 0
