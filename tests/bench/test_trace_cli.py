"""CLI wiring for ``python -m repro.bench trace``."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.trace_cli import _slug, default_metrics_out, default_out
from repro.trace import validate_chrome_trace


def test_slug_is_filesystem_safe():
    assert _slug("Old RT (Nightly)") == "old-rt-nightly"
    assert default_out("xsbench", "New RT") == "TRACE_xsbench_new-rt.json"
    assert default_metrics_out("xsbench", "New RT").endswith(".metrics.json")


@pytest.mark.trace
def test_trace_smoke_command(tmp_path, capsys):
    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    rc = main([
        "bench", "trace", "--smoke",
        "--out", str(out), "--metrics-out", str(metrics),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "traced testsnap" in printed
    assert "perfetto" in printed

    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert {"toolchain", "runtime", "vgpu", "bench"} <= {
        e.get("cat") for e in doc["traceEvents"]
    }
    assert json.loads(metrics.read_text())["schema"] == "repro.trace.metrics/1"


def test_trace_is_a_known_command():
    from repro.bench.__main__ import COMMANDS

    assert "trace" in COMMANDS
