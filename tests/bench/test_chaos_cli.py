"""``python -m repro.bench chaos`` — resilience-drill report contract."""

import json

import pytest

from repro.bench import chaos_cli, history, record

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


@pytest.fixture(scope="module")
def report():
    """One smoke-scale chaos suite shared by the schema tests."""
    return chaos_cli.chaos_suite(smoke=True)


class TestChaosSuiteReport:
    def test_all_invariants_hold(self, report):
        assert report["ok"] is True
        assert report["failed_invariants"] == []

    def test_every_scenario_ran(self, report):
        names = {s["scenario"] for s in report["scenarios_detail"]}
        assert names == {"baseline", "retry_recovers", "breaker_lifecycle",
                         "deadline_shed", "compile_stall",
                         "drain_under_load", "saturation_hints"}
        assert all(inv["ok"]
                   for s in report["scenarios_detail"]
                   for inv in s["invariants"])

    def test_schema(self, report):
        assert report["benchmark"] == "chaos"
        for section in ("schema_version", "meta", "config", "totals",
                        "wall_seconds", "shed_latency_s",
                        "scenarios_detail"):
            assert section in report
        assert report["config"]["smoke"] is True
        assert report["wall_seconds"] > 0

    def test_totals_cover_every_request(self, report):
        details = report["scenarios_detail"]
        assert report["totals"]["requests"] == sum(
            s["requests"] for s in details)
        counts = {}
        for s in details:
            for kind, n in s["counts"].items():
                counts[kind] = counts.get(kind, 0) + n
        assert counts.get("lost", 0) == 0
        assert counts.get("unstructured", 0) == 0
        # The drills actually drilled: requests were shed on deadlines,
        # shed by an open breaker, cancelled by a bounded drain, and
        # retried past an injected worker death.
        assert counts["shed_deadline"] > 0
        assert counts["shed_breaker"] > 0
        assert counts["cancelled"] > 0
        assert sum(s["stats"]["retried"] for s in details) > 0

    def test_shed_latency_percentiles(self, report):
        shed = report["shed_latency_s"]
        assert shed["n"] > 0
        assert 0 <= shed["p50"] <= shed["p99"] <= shed["max"]

    def test_report_round_trips_through_json(self, report, tmp_path):
        path = tmp_path / "BENCH_chaos.json"
        chaos_cli.write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(chaos_cli.render_json(report))
        assert loaded["benchmark"] == "chaos"

    def test_format_chaos_summarizes(self, report):
        text = chaos_cli.format_chaos(report)
        assert "chaos" in text
        assert "invariant" in text


class TestHistoryIntegration:
    def test_chaos_baseline_is_tracked(self):
        assert history.TRACKED_BASELINES["chaos"] == "BENCH_chaos.json"

    def test_record_from_report_extracts_wall_metrics(self, report):
        rec = history.record_from_report(report)
        assert rec["benchmark"] == "chaos"
        metrics = rec["metrics"]
        suite = metrics["wall/suite_s"]
        assert suite["kind"] == record.KIND_WALL
        assert suite["better"] == record.BETTER_LOWER
        assert suite["value"] == pytest.approx(report["wall_seconds"])
        if report["shed_latency_s"]["n"] > 0:
            assert "wall/shed_verdict_p99_s" in metrics
