"""``python -m repro.bench serve`` — load-generator report contract."""

import json

import pytest

from repro.bench import serve_cli

pytestmark = pytest.mark.serve


class TestPercentiles:
    def test_nearest_rank_points(self):
        out = serve_cli.percentiles([float(v) for v in range(1, 101)])
        assert out["p50"] == 50.0
        assert out["p95"] == 95.0
        assert out["p99"] == 99.0
        assert out["max"] == 100.0

    def test_monotonic_on_any_input(self):
        out = serve_cli.percentiles([0.4, 0.1, 0.9, 0.2, 0.7])
        assert out["p50"] <= out["p95"] <= out["p99"] <= out["max"]

    def test_empty_input(self):
        out = serve_cli.percentiles([])
        assert out == {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                       "mean": 0.0, "max": 0.0, "stddev": 0.0, "n": 0}

    def test_spread_stats_for_history_records(self):
        out = serve_cli.percentiles([1.0, 2.0, 3.0])
        assert out["stddev"] == pytest.approx(1.0)
        assert out["n"] == 3


@pytest.fixture(scope="module")
def report():
    """One smoke-scale load run shared by the schema tests: the
    acceptance bar of eight concurrent tenants, one request each."""
    return serve_cli.serve_load(tenants=8, requests=1, workers=4)


class TestServeLoadReport:
    def test_sustains_eight_concurrent_tenants(self, report):
        assert report["config"]["tenants"] == 8
        assert report["totals"]["completed"] == 8
        assert report["totals"]["ok"] == 8
        assert report["totals"]["verified"] == 8
        assert report["totals"]["errors"] == []

    def test_schema(self, report):
        assert report["benchmark"] == "serve"
        for section in ("config", "totals", "latency_s", "queue_wait_s",
                        "service", "pool", "requests"):
            assert section in report
        for point in ("p50", "p95", "p99", "mean", "max"):
            assert point in report["latency_s"]
            assert point in report["queue_wait_s"]
        assert report["throughput_rps"] > 0
        assert report["wall_seconds"] > 0

    def test_percentiles_are_monotonic(self, report):
        lat = report["latency_s"]
        assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_per_request_rows_are_ordered_and_tagged(self, report):
        rows = report["requests"]
        ids = [r["request_id"] for r in rows]
        assert ids == sorted(ids)
        assert all(r["cycles"] > 0 for r in rows)
        assert all(r["latency_s"] >= r["queue_wait_s"] >= 0 for r in rows)

    def test_compiles_are_shared_across_tenants(self, report):
        # Mix has 3 distinct apps at one build: at most 3 compiles for
        # 8 tenants.
        assert report["service"]["compiles"] <= 3
        assert report["pool"]["builds"] + report["pool"]["reuses"] >= 8

    def test_report_round_trips_through_json(self, report, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        serve_cli.write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(serve_cli.render_json(report))
        assert loaded["benchmark"] == "serve"

    def test_format_serve_summarizes(self, report):
        text = serve_cli.format_serve(report)
        assert "8 tenants" in text
        assert "p50" in text and "p99" in text
        assert "throughput" in text
