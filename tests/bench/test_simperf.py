"""Smoke tests for the simulator-throughput benchmark
(``python -m repro.bench simperf``)."""

import json

import pytest

from repro.bench import simperf
from repro.bench.builds import BUILD_ORDER

#: The CLI's --quick build: New RT (Nightly) — a lockstep-safe build,
#: so the warp cell measures true vector execution.
QUICK_BUILD = BUILD_ORDER[1]


@pytest.fixture(scope="module")
def quick_report():
    # Single cell, single repeat: the same shape the CLI's --quick uses.
    return simperf.simperf_matrix(
        apps=["testsnap"], builds=[QUICK_BUILD], repeats=1
    )


@pytest.mark.simperf
class TestSimperfSmoke:
    def test_report_schema(self, quick_report):
        report = quick_report
        assert report["benchmark"] == "simperf"
        assert report["config"]["repeats"] == 1
        # One cell per engine.
        assert {c["engine"] for c in report["cells"]} == {
            "legacy", "decoded", "warp"
        }
        for cell in report["cells"]:
            assert cell["app"] == "testsnap"
            assert cell["build"] == QUICK_BUILD
            assert cell["instructions"] > 0
            assert cell["cycles"] > 0
            assert cell["wall_seconds"] > 0
            assert cell["insts_per_sec"] > 0
            assert cell["cycles_per_sec"] > 0

    def test_engines_simulate_identical_work(self, quick_report):
        by_engine = {c["engine"]: c for c in quick_report["cells"]}
        # Same simulated work; only wall-clock may differ.
        for engine in ("decoded", "warp"):
            assert (by_engine["legacy"]["instructions"]
                    == by_engine[engine]["instructions"])
            assert by_engine["legacy"]["cycles"] == by_engine[engine]["cycles"]

    def test_warp_cell_is_not_a_fallback(self, quick_report):
        by_engine = {c["engine"]: c for c in quick_report["cells"]}
        assert by_engine["warp"]["warp_fallback"] is False
        # Scalar cells carry no fallback flag at all.
        assert "warp_fallback" not in by_engine["legacy"]
        assert "warp_fallback" not in by_engine["decoded"]

    def test_speedups_and_geomean(self, quick_report):
        speedups = quick_report["speedup_decoded_over_legacy"]
        assert list(speedups) == ["testsnap"]
        assert speedups["testsnap"][QUICK_BUILD] > 0
        assert quick_report["geomean_speedup"] > 0
        warp = quick_report["speedup_warp_over_legacy"]
        assert warp["testsnap"][QUICK_BUILD] > 0
        assert quick_report["geomean_speedup_warp"] > 0

    def test_fallback_cells_are_excluded_from_warp_geomean(self):
        # Old RT is not lockstep-safe: its warp cell is flagged and the
        # warp speedup table (and geomean) must skip it entirely.
        report = simperf.simperf_matrix(
            apps=["testsnap"], builds=[BUILD_ORDER[0]], repeats=1
        )
        by_engine = {c["engine"]: c for c in report["cells"]}
        assert by_engine["warp"]["warp_fallback"] is True
        assert report["speedup_warp_over_legacy"] == {}
        assert report["geomean_speedup_warp"] == 0.0
        # The decoded speedup column is unaffected.
        assert report["geomean_speedup"] > 0

    def test_json_round_trip(self, quick_report, tmp_path):
        text = simperf.render_json(quick_report)
        assert json.loads(text) == quick_report
        out = tmp_path / "BENCH_sim.json"
        assert simperf.write_report(quick_report, str(out)) == str(out)
        assert json.loads(out.read_text()) == quick_report

    def test_table_mentions_every_cell(self, quick_report):
        table = simperf.format_simperf(quick_report)
        assert "testsnap" in table
        assert "legacy" in table and "decoded" in table and "warp" in table
        assert "geomean" in table
