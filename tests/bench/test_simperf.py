"""Smoke tests for the simulator-throughput benchmark
(``python -m repro.bench simperf``)."""

import json

import pytest

from repro.bench import simperf
from repro.bench.builds import BUILD_ORDER


@pytest.fixture(scope="module")
def quick_report():
    # Single cell, single repeat: the same shape the CLI's --quick uses.
    return simperf.simperf_matrix(
        apps=["testsnap"], builds=[BUILD_ORDER[0]], repeats=1
    )


@pytest.mark.simperf
class TestSimperfSmoke:
    def test_report_schema(self, quick_report):
        report = quick_report
        assert report["benchmark"] == "simperf"
        assert report["config"]["repeats"] == 1
        # One cell per engine.
        assert {c["engine"] for c in report["cells"]} == {"legacy", "decoded"}
        for cell in report["cells"]:
            assert cell["app"] == "testsnap"
            assert cell["build"] == BUILD_ORDER[0]
            assert cell["instructions"] > 0
            assert cell["cycles"] > 0
            assert cell["wall_seconds"] > 0
            assert cell["insts_per_sec"] > 0
            assert cell["cycles_per_sec"] > 0

    def test_engines_simulate_identical_work(self, quick_report):
        by_engine = {c["engine"]: c for c in quick_report["cells"]}
        # Same simulated work; only wall-clock may differ.
        assert (by_engine["legacy"]["instructions"]
                == by_engine["decoded"]["instructions"])
        assert by_engine["legacy"]["cycles"] == by_engine["decoded"]["cycles"]

    def test_speedups_and_geomean(self, quick_report):
        speedups = quick_report["speedup_decoded_over_legacy"]
        assert list(speedups) == ["testsnap"]
        assert speedups["testsnap"][BUILD_ORDER[0]] > 0
        assert quick_report["geomean_speedup"] > 0

    def test_json_round_trip(self, quick_report, tmp_path):
        text = simperf.render_json(quick_report)
        assert json.loads(text) == quick_report
        out = tmp_path / "BENCH_sim.json"
        assert simperf.write_report(quick_report, str(out)) == str(out)
        assert json.loads(out.read_text()) == quick_report

    def test_table_mentions_every_cell(self, quick_report):
        table = simperf.format_simperf(quick_report)
        assert "testsnap" in table
        assert "legacy" in table and "decoded" in table
        assert "geomean" in table
