"""``python -m repro.bench micro`` — directive-level microbenchmarks."""

from __future__ import annotations

import json

import pytest

from repro.bench import micro
from repro.trace.categories import CATEGORY_NAMES

pytestmark = pytest.mark.micro


@pytest.fixture(scope="module")
def smoke_report():
    return micro.micro_matrix(smoke=True)


class TestMicroSmoke:
    def test_costs_for_all_constructs_runtimes_engines(self, smoke_report):
        """The acceptance bar: modeled-cycle costs for >= 6 constructs
        x both runtimes x both engines."""
        covered = {
            (c["construct"], c["runtime"], c["engine"])
            for c in smoke_report["cells"]
            if c["cycles_per_call"] is not None
        }
        constructs = {c for c, _, _ in covered}
        assert len(constructs) >= 6
        for runtime in ("oldrt", "newrt"):
            for engine in ("legacy", "decoded"):
                per = {c for c, rt, en in covered
                       if rt == runtime and en == engine}
                assert len(per) >= 6, (runtime, engine, sorted(per))

    def test_engine_parity(self, smoke_report):
        assert smoke_report["parity_ok"] is True

    def test_cell_schema(self, smoke_report):
        for cell in smoke_report["cells"]:
            assert cell["construct"] in micro.CONSTRUCT_ORDER
            assert cell["category"] in CATEGORY_NAMES
            assert cell["engine"] in ("legacy", "decoded")
            assert cell["cycles"] >= 0
            if cell["cycles_per_call"] is not None:
                assert cell["cycles_per_call"] > 0

    def test_summary_covers_every_construct(self, smoke_report):
        for construct in micro.CONSTRUCT_ORDER:
            entry = smoke_report["constructs"][construct]
            assert entry["category"] == micro.CONSTRUCT_CATEGORY[construct]
            for runtime in smoke_report["config"]["runtimes"]:
                assert runtime in entry

    def test_report_carries_v2_envelope(self, smoke_report):
        from repro.bench import record

        assert smoke_report["meta"]["schema_version"] == record.SCHEMA_VERSION
        assert smoke_report["benchmark"] == "micro"

    def test_report_is_json_serializable(self, smoke_report):
        json.loads(micro.render_json(smoke_report))

    def test_smoke_is_subset_of_full_sweep_config(self):
        """Smoke cells must intersect a tracked full-sweep baseline, or
        the verify-time compare gate would be vacuous."""
        assert set(micro.SMOKE_GRID) <= set(micro.FULL_GRID)
        assert set(micro.SMOKE_WORKLOADS) <= set(micro.FULL_WORKLOADS)

    def test_old_runtime_worksharing_costs_more(self, smoke_report):
        """The paper's Fig. 5 story: the old RT's chunked worksharing
        dispatch costs more per iteration than the no-chunk loop."""
        ws = smoke_report["constructs"]["worksharing"]
        assert ws["oldrt"]["cycles_per_call"] > ws["newrt"]["cycles_per_call"]

    def test_barrier_alignment_split_differs_by_runtime(self, smoke_report):
        """The new RT's launch bracket closes aligned barrier phases;
        the old RT has no aligned fast path at all (§III-E).  Explicit
        user barriers stay unaligned in both at -O0 — proving them
        aligned is the optimized pipeline's job (§IV-C)."""
        def cells(construct, runtime):
            out = [c for c in smoke_report["cells"]
                   if c["construct"] == construct and c["runtime"] == runtime
                   and c["engine"] == "decoded"]
            assert out
            return out

        # Raw empty-kernel snapshot: the bracket itself.
        for cell in cells("parallel_region", "newrt"):
            assert cell["barriers_aligned"] > 0
        for cell in cells("parallel_region", "oldrt"):
            assert cell["barriers_aligned"] == 0
        # Differential barrier cells: user barriers, unaligned at -O0.
        for runtime in ("oldrt", "newrt"):
            for cell in cells("barrier", runtime):
                assert cell["barriers_unaligned"] > 0
                assert cell["barriers_aligned"] == 0

    def test_global_fallback_counts_mallocs(self, smoke_report):
        cells = [c for c in smoke_report["cells"]
                 if c["construct"] == "global_fallback"]
        assert all(c["global_fallbacks"] > 0 for c in cells)


class TestScalingFit:
    def test_fit_recovers_plane(self):
        points = [
            (t, th, 10.0 + 2.0 * t + 0.5 * th)
            for t in (1, 2, 4) for th in (4, 16)
        ]
        fit = micro.fit_scaling(points)
        assert fit is not None
        assert fit["a"] == pytest.approx(10.0, abs=1e-6)
        assert fit["b"] == pytest.approx(2.0, abs=1e-6)
        assert fit["c"] == pytest.approx(0.5, abs=1e-6)
        assert fit["r2"] == pytest.approx(1.0)

    def test_fit_constant_data_is_perfect_not_negative(self):
        points = [(t, th, 10.2) for t in (1, 2, 4) for th in (4, 16)]
        fit = micro.fit_scaling(points)
        assert fit["r2"] == pytest.approx(1.0)

    def test_fit_requires_three_grid_points(self):
        assert micro.fit_scaling([(1, 4, 5.0), (2, 4, 6.0)]) is None
        # Repeats at the same grid point don't add rank.
        assert micro.fit_scaling([(1, 4, 5.0), (1, 4, 5.0), (2, 4, 6.0)]) is None


class TestMicroCLI:
    def test_smoke_never_overwrites_tracked_report(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["prog", "micro", "--smoke"]) == 0
        assert not (tmp_path / micro.DEFAULT_OUTPUT).exists()

    def test_explicit_out_is_written(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        out = tmp_path / "micro.json"
        assert main(["prog", "micro", "--smoke", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "micro"
        assert report["parity_ok"] is True
