"""Machine-readable report (python -m repro.bench json)."""

import json

import pytest

from repro.bench.report import collect_report, render_json


@pytest.fixture(scope="module")
def report():
    # Restrict the Fig.-11 sweep to one app to keep the test quick; the
    # other figures have fixed app sets.
    return collect_report(apps=["gridmini"])


class TestReport:
    def test_all_sections_present(self, report):
        assert set(report) == {
            "fig10_relative_performance",
            "fig11_resources",
            "fig12_gridmini_gflops",
            "fig13_ablation_cycles",
            "oversubscription",
        }

    def test_fig11_rows_are_dicts(self, report):
        row = report["fig11_resources"][0]
        assert {"app", "build", "kernel_cycles", "registers",
                "shared_memory_bytes"} <= set(row)

    def test_fig10_has_all_apps(self, report):
        assert set(report["fig10_relative_performance"]) == {
            "xsbench", "rsbench", "testsnap", "minifmm"}

    def test_oversubscription_summary(self, report):
        over = report["oversubscription"]
        assert over["register_delta"] < 0

    def test_json_serializable(self, report):
        text = json.dumps(report)
        assert json.loads(text) == json.loads(render_json(apps=["gridmini"]))
