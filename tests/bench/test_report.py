"""Machine-readable report (python -m repro.bench json)."""

import json

import pytest

from repro.bench.report import collect_report, render_json


@pytest.fixture(scope="module")
def report():
    # Restrict the Fig.-11 sweep to one app to keep the test quick; the
    # other figures have fixed app sets.
    return collect_report(apps=["gridmini"])


#: Sections whose contents are fully deterministic (simulated cycles);
#: the observability sections carry real wall times and process-wide
#: cache counters, which legitimately differ between collections.
DETERMINISTIC_SECTIONS = (
    "fig10_relative_performance",
    "fig11_resources",
    "fig12_gridmini_gflops",
    "fig13_ablation_cycles",
    "oversubscription",
    "kernel_profiles",
)


class TestReport:
    def test_all_sections_present(self, report):
        assert set(report) == set(DETERMINISTIC_SECTIONS) | {
            "pipeline_timings",
            "compile_cache",
        }

    def test_fig11_rows_are_dicts(self, report):
        row = report["fig11_resources"][0]
        assert {"app", "build", "kernel_cycles", "registers",
                "shared_memory_bytes"} <= set(row)

    def test_fig10_has_all_apps(self, report):
        assert set(report["fig10_relative_performance"]) == {
            "xsbench", "rsbench", "testsnap", "minifmm"}

    def test_oversubscription_summary(self, report):
        over = report["oversubscription"]
        assert over["register_delta"] < 0

    def test_pipeline_timings_section(self, report):
        stats = report["pipeline_timings"]["stats"]
        assert stats["pass_runs"] > 0
        assert stats["rounds"] >= 1
        assert stats["total_pass_time_s"] == pytest.approx(
            sum(p["wall_time_s"] for p in stats["per_pass"]))

    def test_compile_cache_counters(self, report):
        cache = report["compile_cache"]
        assert cache["misses"] + cache["hits"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_json_serializable(self, report):
        text = json.dumps(report)
        fresh = json.loads(render_json(apps=["gridmini"]))
        old = json.loads(text)
        # The simulation is deterministic, so every figure section must
        # reproduce exactly across repeated collections.
        for section in DETERMINISTIC_SECTIONS:
            assert old[section] == fresh[section]
