"""Benchmark harness and figure generators (small sizes)."""

import pytest

from repro.bench.builds import (
    BUILD_ORDER,
    CUDA,
    NEW_RT,
    OLD_RT_NIGHTLY,
    ablation_configs,
    build_options,
)
from repro.bench.harness import APPS, SKIP_CUDA, run_build_matrix
from repro.bench import figures

TINY = {"n_sites": 64}


class TestBuildOptions:
    def test_five_builds(self):
        options = build_options()
        assert list(options) == BUILD_ORDER

    def test_fresh_instances(self):
        a = build_options()
        b = build_options()
        assert a[NEW_RT] is not b[NEW_RT]

    def test_new_rt_has_assumptions(self):
        options = build_options()
        cfg = options[NEW_RT].runtime_config
        assert cfg.assume_threads_oversubscription
        assert cfg.assume_teams_oversubscription

    def test_nightly_keeps_stack(self):
        options = build_options()
        assert not options["New RT (Nightly)"].pipeline.enable_globalization_elim

    def test_ablation_configs_differ_from_full(self):
        configs = ablation_configs()
        assert "full" in configs
        full = configs["full"]
        for label, cfg in configs.items():
            if label == "full":
                continue
            assert vars(cfg) != vars(full), label


class TestHarness:
    def test_matrix_runs_and_verifies(self):
        matrix = run_build_matrix("gridmini", size=TINY)
        assert matrix.all_verified()
        assert set(matrix.results) == set(BUILD_ORDER)

    def test_relative_performance_normalized(self):
        matrix = run_build_matrix("gridmini", size=TINY)
        rel = matrix.relative_performance(OLD_RT_NIGHTLY)
        assert rel[OLD_RT_NIGHTLY] == 1.0
        assert rel[NEW_RT] >= 1.0

    def test_testsnap_skips_cuda(self):
        assert "testsnap" in SKIP_CUDA
        matrix = run_build_matrix(
            "testsnap", size={"n_atoms": 64, "n_neighbors": 2})
        assert CUDA not in matrix.results

    def test_build_subset(self):
        matrix = run_build_matrix("gridmini", builds=[NEW_RT, CUDA], size=TINY)
        assert set(matrix.results) == {NEW_RT, CUDA}


class TestFigureFormatting:
    def test_fig10_table_renders(self):
        data = {"gridmini": run_build_matrix("gridmini", size=TINY)
                .relative_performance(OLD_RT_NIGHTLY)}
        text = figures.format_fig10(data)
        assert "gridmini" in text
        assert "1.00" in text

    def test_fig11_rows_render(self):
        rows = [figures.ResourceRow("app", "build", 100, 0.1, 32, 2048)]
        text = figures.format_fig11(rows)
        assert "2048B" in text and "32" in text

    def test_fig12_renders(self):
        text = figures.format_fig12({NEW_RT: 12.34, CUDA: 12.50})
        assert "12.34" in text

    def test_fig13_renders(self):
        text = figures.format_fig13({"app": {"full": 100, "no x": 150}})
        assert "1.50x" in text

    def test_oversubscription_effect_fields(self):
        effect = figures.OversubscriptionEffect("app", 1000, 950, 40, 30)
        assert effect.register_delta == -10
        assert effect.time_delta_percent == pytest.approx(-5.0)
        assert "-10" in figures.format_oversubscription(effect)


class TestCLI:
    def test_module_main_rejects_unknown(self):
        from repro.bench.__main__ import main

        assert main(["prog", "unknown-figure"]) == 2
