"""The `python -m repro.bench faults` matrix (and its --smoke subset).

Running the smoke matrix in-process is the compiled-app integration
test for the whole robustness stack: real kernels, both engines,
``sim_jobs=2``, CrashReport comparability — the same entry point
``make verify`` drives.
"""

import json

import pytest

from repro.bench import faults_cli

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def smoke_report():
    return faults_cli.run_faults(smoke=True)


class TestSmokeMatrix:
    def test_matrix_passes(self, smoke_report):
        for row in smoke_report["scenarios"]:
            assert not row["problems"], (row["scenario"], row["problems"])
        assert smoke_report["ok"] is True

    def test_smoke_runs_exactly_the_smoke_scenarios(self, smoke_report):
        names = [r["scenario"] for r in smoke_report["scenarios"]]
        assert names == list(faults_cli.SMOKE_NAMES)

    def test_every_scenario_ran_all_three_cells(self, smoke_report):
        for row in smoke_report["scenarios"]:
            assert set(row["cells"]) == {"decoded", "legacy", "sim_jobs=2"}

    def test_exhaust_shows_fallback_mallocs(self, smoke_report):
        row = next(r for r in smoke_report["scenarios"]
                   if r["scenario"] == "stack-exhaust")
        assert row["cells"]["decoded"]["device_mallocs"] > 0

    def test_rt_trap_produces_a_comparable_report(self, smoke_report):
        row = next(r for r in smoke_report["scenarios"]
                   if r["scenario"] == "rt-trap")
        reports = {label: cell["report"] for label, cell in row["cells"].items()}
        assert reports["decoded"] == reports["legacy"] == reports["sim_jobs=2"]
        assert reports["decoded"]["error_type"] == "InjectedFault"
        assert reports["decoded"]["context"] is not None

    def test_render_json_round_trips(self, smoke_report):
        assert json.loads(faults_cli.render_json(smoke_report)) == smoke_report

    def test_format_mentions_the_verdict(self, smoke_report):
        text = faults_cli.format_faults(smoke_report)
        assert "matrix OK" in text
        assert text.count("[PASS]") == len(faults_cli.SMOKE_NAMES)


def test_scenario_table_is_well_formed():
    names = [s.name for s in faults_cli.SCENARIOS]
    assert len(names) == len(set(names))
    assert set(faults_cli.SMOKE_NAMES) <= set(names)
    for scenario in faults_cli.SCENARIOS:
        assert scenario.expect == "ok" or scenario.expect[0].isupper()
