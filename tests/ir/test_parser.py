"""Textual IR parser: print/parse round-trips and error handling."""

import numpy as np
import pytest

from repro.ir import (
    F64,
    I32,
    I64,
    Module,
    PTR_GLOBAL,
    print_module,
    verify_module,
)
from repro.ir.parser import ParseError, parse_module
from repro.runtime.config import RuntimeConfig
from repro.runtime.interface import NEW_RUNTIME, OLD_RUNTIME
from repro.vgpu import VirtualGPU
from tests.conftest import make_function, make_kernel


def roundtrip(module):
    text1 = print_module(module)
    parsed = parse_module(text1)
    verify_module(parsed)
    assert print_module(parsed) == text1
    return parsed


class TestRoundTrip:
    def test_simple_function(self, module):
        func, b = make_function(module, arg_names=["x"])
        v = b.add(func.args[0], 1)
        b.ret(v)
        roundtrip(module)

    def test_control_flow_and_phis(self, module):
        func, b = make_function(module)
        loop = func.add_block("loop")
        done = func.add_block("done")
        entry = func.entry
        b.br(loop)
        b.set_insert_point(loop)
        iv = b.phi(I32, "iv")
        iv.add_incoming(b.i32(0), entry)
        nxt = b.add(iv, 1)
        iv.add_incoming(nxt, loop)
        b.cond_br(b.icmp("slt", nxt, func.args[0]), loop, done)
        b.set_insert_point(done)
        b.ret(iv)
        roundtrip(module)

    def test_memory_and_atomics(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["p"])
        slot = b.alloca(I64)
        b.store(b.i64(1), slot)
        v = b.load(I64, slot)
        b.atomic_rmw("add", func.args[0], v)
        b.store(v, b.ptradd(func.args[0], 8), volatile=True)
        b.load(I64, func.args[0], volatile=True)
        b.ret()
        roundtrip(module)

    def test_struct_types_and_globals(self, module):
        from repro.memory.addrspace import AddressSpace
        from repro.ir import ArrayType, Constant, GlobalVariable, StructType

        module.add_struct_type(StructType("Pair", (("a", I32), ("b", F64))))
        module.add_global(GlobalVariable(
            "cfg", I32, addrspace=AddressSpace.CONSTANT,
            initializer=[Constant(I32, 3)], is_constant=True))
        module.add_global(GlobalVariable(
            "tile", ArrayType(F64, 8), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        b.ret()
        parsed = roundtrip(module)
        assert parsed.get_global("cfg").is_constant
        assert parsed.struct_types["Pair"].field_type("b") == F64

    def test_full_new_runtime(self):
        module = Module("rt")
        NEW_RUNTIME.populate(module, RuntimeConfig())
        roundtrip(module)

    def test_full_old_runtime(self):
        module = Module("rt")
        OLD_RUNTIME.populate(module, RuntimeConfig())
        roundtrip(module)

    def test_assumptions_and_attrs_preserved(self, module):
        func, b = make_function(module)
        func.assumptions.add("ext_aligned_barrier")
        func.attrs.add("alwaysinline")
        func.linkage = "internal"
        b.ret(func.args[0])
        parsed = roundtrip(module)
        pf = parsed.get_function("f")
        assert "ext_aligned_barrier" in pf.assumptions
        assert "alwaysinline" in pf.attrs
        assert pf.linkage == "internal"


class TestSemanticEquivalence:
    def test_parsed_module_executes_identically(self):
        """print -> parse must preserve behaviour, not just text."""
        from repro.apps import testsnap
        from repro.frontend.driver import CompileOptions

        size = {"n_atoms": 64, "n_neighbors": 4}
        result = testsnap.run(CompileOptions(runtime="new"), size=size,
                              num_teams=2, threads_per_team=32)
        parsed = parse_module(print_module(result.compiled.module))
        verify_module(parsed)

        gpu = VirtualGPU(parsed)
        host_args, verify = testsnap.prepare(gpu, size)
        args = result.compiled.abi(testsnap.KERNEL).marshal(gpu, host_args)
        profile = gpu.launch(testsnap.KERNEL, args, 2, 32)
        assert verify(gpu, host_args) < 1e-12
        assert profile.cycles == result.profile.cycles


class TestErrors:
    def test_unknown_instruction(self):
        text = """define void @f() {
entry:
  frobnicate i32 1, 2
}
"""
        with pytest.raises(ParseError, match="frobnicate"):
            parse_module(text)

    def test_undefined_value(self):
        text = """define i32 @f() {
entry:
  ret i32 %ghost
}
"""
        with pytest.raises(ParseError):
            parse_module(text)

    def test_unterminated_body(self):
        text = "define void @f() {\nentry:\n  ret void\n"
        with pytest.raises(ParseError, match="unterminated"):
            parse_module(text)

    def test_unknown_symbol(self):
        text = """define void @f() {
entry:
  call void @missing()
}
"""
        with pytest.raises(ParseError, match="missing"):
            parse_module(text)

    def test_hand_written_ir_accepted(self):
        text = """; module hand
@counter = internal addrspace(1) global i64 zeroinitializer

define void @kern(i64 %n) kernel {
entry:
  %c = icmp sgt i64 %n, 0
  br %c, label %work, label %done
work:
  %old = atomicrmw add @counter, i64 %n
  br label %done
done:
  ret void
}
"""
        module = parse_module(text)
        verify_module(module)
        gpu = VirtualGPU(module)
        gpu.launch("kern", [5], 1, 4)
        gv = module.get_global("counter")
        assert gpu.read_scalar(gpu.global_addresses[gv], I64) == 20
