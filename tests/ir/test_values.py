"""Use-def bookkeeping, constants and globals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    BinOp,
    Constant,
    F64,
    GlobalVariable,
    I32,
    I64,
    UndefValue,
)
from repro.ir.values import const_i1, const_int, null_pointer


class TestConstant:
    def test_int_constants_wrap(self):
        assert Constant(I32, -1).value == 0xFFFFFFFF
        assert Constant(I32, 1 << 40).value == 0

    def test_signed_view(self):
        assert Constant(I32, -5).signed() == -5

    def test_float_constant(self):
        c = Constant(F64, 2)
        assert isinstance(c.value, float) and c.value == 2.0

    def test_equality_and_hash(self):
        assert Constant(I32, 3) == Constant(I32, 3)
        assert Constant(I32, 3) != Constant(I64, 3)
        assert len({Constant(I32, 3), Constant(I32, 3)}) == 1

    def test_null_pointer_prints_null(self):
        assert null_pointer().short() == "null"
        assert null_pointer().is_null

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_roundtrip(self, v):
        assert Constant(I32, v).signed() == v

    def test_bad_type_rejected(self):
        from repro.ir.types import VOID

        with pytest.raises(TypeError):
            Constant(VOID, 0)


class TestUseDef:
    def test_uses_tracked_on_creation(self):
        a = const_int(1)
        b = const_int(2)
        inst = BinOp("add", a, b)
        assert a.num_uses == 1 and b.num_uses == 1
        assert inst.operands == [a, b]

    def test_same_value_used_twice(self):
        a = const_int(1)
        inst = BinOp("add", a, a)
        assert a.num_uses == 2
        assert a.users() == [inst]

    def test_replace_all_uses_with(self):
        a, b, c = const_int(1), const_int(2), const_int(3)
        inst = BinOp("add", a, b)
        a.replace_all_uses_with(c)
        assert inst.lhs is c
        assert a.num_uses == 0
        assert c.num_uses == 1

    def test_rauw_self_is_noop(self):
        a = const_int(1)
        inst = BinOp("add", a, a)
        a.replace_all_uses_with(a)
        assert a.num_uses == 2

    def test_set_operand_updates_uses(self):
        a, b, c = const_int(1), const_int(2), const_int(3)
        inst = BinOp("add", a, b)
        inst.set_operand(0, c)
        assert a.num_uses == 0 and c.num_uses == 1

    def test_drop_all_references(self):
        a, b = const_int(1), const_int(2)
        inst = BinOp("add", a, b)
        inst.drop_all_references()
        assert a.num_uses == 0 and b.num_uses == 0
        assert inst.operands == []

    def test_remove_missing_use_raises(self):
        a = const_int(1)
        inst = BinOp("add", a, const_int(2))
        with pytest.raises(ValueError):
            a.remove_use(inst, 5)


class TestGlobalVariable:
    def test_address_type_matches_space(self):
        gv = GlobalVariable("g", I32, addrspace=AddressSpace.SHARED)
        assert gv.type.addrspace is AddressSpace.SHARED
        assert gv.short() == "@g"

    def test_linkage_validation(self):
        with pytest.raises(ValueError):
            GlobalVariable("g", I32, linkage="bogus")

    def test_internal_by_default(self):
        assert GlobalVariable("g", I32).has_internal_linkage

    def test_undef_value(self):
        u = UndefValue(I32)
        assert u.short() == "undef"
        assert const_i1(True).value == 1
