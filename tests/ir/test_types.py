"""Unit and property tests for the IR type system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.addrspace import AddressSpace
from repro.ir.types import (
    ArrayType,
    F32,
    F64,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    VOID,
    pointer_to,
)

WIDTHS = [1, 8, 16, 32, 64]


class TestIntType:
    def test_interned_singletons_compare_equal(self):
        assert I32 == IntType(32)
        assert I32 != I64

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(7)

    def test_bounds(self):
        assert I8.max_unsigned == 255
        assert I8.max_signed == 127
        assert I8.min_signed == -128
        assert I1.max_unsigned == 1

    @given(st.sampled_from(WIDTHS), st.integers())
    def test_wrap_stays_in_range(self, bits, value):
        ty = IntType(bits)
        wrapped = ty.wrap(value)
        assert 0 <= wrapped <= ty.max_unsigned

    @given(st.sampled_from(WIDTHS), st.integers())
    def test_wrap_is_mod_2n(self, bits, value):
        ty = IntType(bits)
        assert ty.wrap(value) == value % (1 << bits)

    @given(st.sampled_from([8, 16, 32, 64]), st.integers())
    def test_signed_roundtrip(self, bits, value):
        ty = IntType(bits)
        signed = ty.to_signed(ty.wrap(value))
        assert ty.min_signed <= signed <= ty.max_signed
        assert ty.wrap(signed) == ty.wrap(value)

    def test_to_signed_negative(self):
        assert I8.to_signed(0xFF) == -1
        assert I8.to_signed(0x80) == -128
        assert I8.to_signed(0x7F) == 127


class TestFloatType:
    def test_names(self):
        assert str(F32) == "float"
        assert str(F64) == "double"

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            from repro.ir.types import FloatType

            FloatType(16)


class TestPointerType:
    def test_default_addrspace_is_generic(self):
        assert PointerType().addrspace is AddressSpace.GENERIC

    def test_pointer_to_interned(self):
        assert pointer_to(AddressSpace.SHARED) is pointer_to(AddressSpace.SHARED)

    def test_rendering(self):
        assert str(PointerType()) == "ptr"
        assert "addrspace(3)" in str(pointer_to(AddressSpace.SHARED))


class TestAggregates:
    def test_array_type(self):
        ty = ArrayType(I32, 10)
        assert str(ty) == "[10 x i32]"
        with pytest.raises(ValueError):
            ArrayType(I32, -1)

    def test_struct_field_lookup(self):
        ty = StructType("S", (("a", I32), ("b", F64)))
        assert ty.field_type("b") == F64
        assert ty.field_index("a") == 0
        with pytest.raises(KeyError):
            ty.field_type("missing")

    def test_struct_equality_by_value(self):
        a = StructType("S", (("a", I32),))
        b = StructType("S", (("a", I32),))
        assert a == b
        assert a != StructType("S", (("a", I64),))


class TestFunctionType:
    def test_rendering(self):
        ft = FunctionType(VOID, (I32, F64))
        assert str(ft) == "void (i32, double)"

    def test_classification(self):
        assert I32.is_integer and not I32.is_float
        assert F64.is_float and not F64.is_pointer
        assert PointerType().is_pointer
        assert VOID.is_void
        assert ArrayType(I8, 4).is_aggregate
        assert StructType("T", ()).is_aggregate
