"""Intrinsic registry invariants."""

import pytest

from repro.ir import Module, declare_intrinsic, intrinsic_info, is_intrinsic
from repro.ir.intrinsics import all_intrinsics


class TestRegistry:
    def test_barriers_classified(self):
        aligned = intrinsic_info("gpu.barrier.aligned")
        generic = intrinsic_info("gpu.barrier")
        assert aligned.is_barrier and aligned.aligned
        assert generic.is_barrier and not generic.aligned
        assert generic.cost > aligned.cost  # generic barriers are heavier

    def test_invariance_classes(self):
        assert intrinsic_info("gpu.block_dim").invariance == "grid"
        assert intrinsic_info("gpu.block_id").invariance == "team"
        assert intrinsic_info("gpu.thread_id").invariance == "thread"

    def test_warp_size_is_compile_time_constant(self):
        assert intrinsic_info("gpu.warp_size").constant_result == 32

    def test_assume_is_free(self):
        info = intrinsic_info("llvm.assume")
        assert info.cost == 0 and info.readnone

    def test_unknown_name(self):
        assert intrinsic_info("gpu.frobnicate") is None
        assert not is_intrinsic("gpu.frobnicate")

    def test_declare_sets_attributes(self):
        module = Module()
        barrier = declare_intrinsic(module, "gpu.barrier.aligned")
        assert "convergent" in barrier.attrs
        assert "ext_aligned_barrier" in barrier.assumptions
        sqrt = declare_intrinsic(module, "llvm.sqrt.f64")
        assert "readnone" in sqrt.attrs

    def test_declare_unknown_raises(self):
        with pytest.raises(KeyError):
            declare_intrinsic(Module(), "not.a.thing")

    def test_declare_idempotent(self):
        module = Module()
        a = declare_intrinsic(module, "malloc")
        b = declare_intrinsic(module, "malloc")
        assert a is b

    def test_every_intrinsic_consistent(self):
        for info in all_intrinsics():
            # A barrier is an effect; readnone things have no effects.
            if info.is_barrier:
                assert info.side_effects
            if info.readnone:
                assert not info.is_barrier
            assert info.cost >= 0

    def test_math_intrinsics_cover_both_widths(self):
        for op in ("sqrt", "exp", "log", "sin", "cos", "fabs", "pow"):
            assert is_intrinsic(f"llvm.{op}.f64")
            assert is_intrinsic(f"llvm.{op}.f32")
