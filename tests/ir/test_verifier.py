"""The structural verifier must catch each class of broken IR."""

import pytest

from repro.ir import (
    BinOp,
    Br,
    Call,
    Constant,
    Function,
    FunctionType,
    I32,
    Module,
    Phi,
    Ret,
    VerificationError,
    verify_module,
)
from repro.ir.values import const_int
from tests.conftest import make_function


def expect_error(module, fragment):
    with pytest.raises(VerificationError) as exc:
        verify_module(module)
    assert fragment in str(exc.value)


class TestVerifier:
    def test_accepts_valid_module(self, module):
        func, b = make_function(module)
        b.ret(b.add(func.args[0], 1))
        verify_module(module)

    def test_missing_terminator(self, module):
        func, b = make_function(module)
        b.add(func.args[0], 1)
        expect_error(module, "lacks a terminator")

    def test_empty_block(self, module):
        func, b = make_function(module)
        b.ret(func.args[0])
        func.add_block("empty")
        expect_error(module, "is empty")

    def test_phi_incoming_mismatch(self, module):
        func, b = make_function(module)
        bb = func.add_block("bb")
        b.br(bb)
        b.set_insert_point(bb)
        phi = b.phi(I32)
        # No incoming for the entry edge.
        b.ret(phi)
        expect_error(module, "incoming")

    def test_use_before_def_across_blocks(self, module):
        func, b = make_function(module)
        late = func.add_block("late")
        early = func.add_block("early")
        # entry branches to early, which branches to late; late defines
        # a value used in early -> dominance violation.
        b.br(early)
        b.set_insert_point(late)
        v = b.add(func.args[0], 1)
        b.ret(v)
        b.set_insert_point(early)
        use = BinOp("add", v, const_int(1, I32))
        early.instructions.insert(0, use)
        use.parent = early
        b.br(late)
        expect_error(module, "does not dominate")

    def test_call_arity_checked(self, module):
        callee, cb = make_function(module, "callee", params=(I32, I32))
        cb.ret(callee.args[0])
        caller, b = make_function(module, "caller")
        call = Call(callee, [caller.args[0]], I32)
        b.block.append(call)
        b.ret(call)
        expect_error(module, "expected 2")

    def test_use_list_consistency(self, module):
        func, b = make_function(module)
        v = b.add(func.args[0], 1)
        b.ret(v)
        # Corrupt the use list.
        v.uses.clear()
        expect_error(module, "missing use-list entry")

    def test_foreign_operand(self, module):
        func_a, ba = make_function(module, "a")
        va = ba.add(func_a.args[0], 1)
        ba.ret(va)
        func_b, bb = make_function(module, "b")
        inst = BinOp("add", va, const_int(1, I32))
        bb.block.append(inst)
        bb.ret(inst)
        expect_error(module, "foreign operand")

    def test_error_includes_function_name(self, module):
        func, b = make_function(module, name="broken")
        b.add(func.args[0], 1)
        with pytest.raises(VerificationError) as exc:
            verify_module(module)
        assert "@broken" in str(exc.value)
