"""Module/Function/BasicBlock container behavior."""

import pytest

from repro.ir import (
    Br,
    Function,
    FunctionType,
    GlobalVariable,
    I32,
    Module,
    Phi,
    Ret,
    StructType,
    VOID,
)
from tests.conftest import make_function


class TestBasicBlock:
    def test_append_past_terminator_rejected(self, module):
        func, b = make_function(module)
        b.ret(func.args[0])
        with pytest.raises(ValueError):
            b.ret(func.args[0])

    def test_successors(self, module):
        func, b = make_function(module)
        t1 = func.add_block("t1")
        t2 = func.add_block("t2")
        cond = b.icmp("eq", func.args[0], b.i32(0))
        b.cond_br(cond, t1, t2)
        assert func.entry.successors() == [t1, t2]

    def test_condbr_same_target_single_successor(self, module):
        func, b = make_function(module)
        t1 = func.add_block("t1")
        cond = b.icmp("eq", func.args[0], b.i32(0))
        b.cond_br(cond, t1, t1)
        assert func.entry.successors() == [t1]

    def test_phis_and_first_non_phi(self, module):
        func, b = make_function(module)
        bb = func.add_block("bb")
        phi = Phi(I32)
        bb.insert(0, phi)
        assert bb.phis() == [phi]
        assert bb.first_non_phi_index() == 1

    def test_unique_block_names(self, module):
        func, _ = make_function(module)
        a = func.add_block("loop")
        b2 = func.add_block("loop")
        assert a.name != b2.name


class TestFunction:
    def test_declaration_has_no_entry(self, module):
        func = module.declare("ext", FunctionType(VOID, ()))
        assert func.is_declaration
        with pytest.raises(ValueError):
            _ = func.entry

    def test_args_match_signature(self, module):
        func = Function("g", FunctionType(I32, (I32, I32)), arg_names=["a", "b"])
        assert [a.name for a in func.args] == ["a", "b"]
        assert all(a.parent is func for a in func.args)

    def test_kernel_flag(self, module):
        func, _ = make_function(module)
        assert not func.is_kernel
        func.attrs.add("kernel")
        assert func.is_kernel

    def test_add_block_after(self, module):
        func, _ = make_function(module)
        a = func.add_block("a")
        mid = func.add_block("mid", after=func.entry)
        assert func.blocks.index(mid) == 1
        assert func.blocks.index(a) == 2


class TestModule:
    def test_duplicate_function_rejected(self, module):
        make_function(module, "f")
        with pytest.raises(ValueError):
            module.add_function(Function("f", FunctionType(VOID, ())))

    def test_declare_idempotent(self, module):
        a = module.declare("x", FunctionType(VOID, ()))
        b = module.declare("x", FunctionType(VOID, ()))
        assert a is b

    def test_declare_conflicting_type_rejected(self, module):
        module.declare("x", FunctionType(VOID, ()))
        with pytest.raises(TypeError):
            module.declare("x", FunctionType(I32, ()))

    def test_remove_function_with_uses_refuses(self, module):
        callee, cb = make_function(module, "callee", ret=VOID, params=())
        cb.ret()
        caller, b = make_function(module, "caller", ret=VOID, params=())
        b.call(callee, [])
        b.ret()
        with pytest.raises(ValueError):
            module.remove_function(callee)

    def test_globals(self, module):
        gv = module.add_global(GlobalVariable("g", I32))
        assert module.get_global("g") is gv
        with pytest.raises(ValueError):
            module.add_global(GlobalVariable("g", I32))
        module.remove_global(gv)
        assert "g" not in module.globals

    def test_struct_types(self, module):
        ty = StructType("S", (("a", I32),))
        module.add_struct_type(ty)
        module.add_struct_type(ty)  # idempotent
        with pytest.raises(ValueError):
            module.add_struct_type(StructType("S", ()))

    def test_kernels_and_defined(self, module):
        func, b = make_function(module)
        b.ret(func.args[0])
        module.declare("d", FunctionType(VOID, ()))
        assert list(module.defined_functions()) == [func]
        assert module.kernels() == []
        func.attrs.add("kernel")
        assert module.kernels() == [func]
