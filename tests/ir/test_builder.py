"""IRBuilder conveniences and create-time folding."""

import pytest

from repro.ir import (
    Constant,
    F64,
    I1,
    I32,
    I64,
    Module,
    PTR,
    StructType,
    VOID,
    verify_module,
)
from repro.ir.instructions import BinOp, PtrAdd
from repro.memory.layout import DATA_LAYOUT
from tests.conftest import make_function


class TestCreateTimeFolding:
    def test_const_const_folds(self, builder):
        v = builder.add(builder.i32(2), builder.i32(3))
        assert isinstance(v, Constant) and v.value == 5

    def test_add_zero_identity(self, builder):
        x = builder.function.args[0]
        assert builder.add(x, 0) is x
        assert builder.add(0, x) is x

    def test_mul_identities(self, builder):
        x = builder.function.args[0]
        assert builder.mul(x, 1) is x
        zero = builder.mul(x, 0)
        assert isinstance(zero, Constant) and zero.value == 0

    def test_non_foldable_creates_instruction(self, builder):
        x = builder.function.args[0]
        v = builder.add(x, 5)
        assert isinstance(v, BinOp)
        assert v.parent is builder.block

    def test_icmp_const_folds(self, builder):
        v = builder.icmp("slt", builder.i32(1), builder.i32(2))
        assert isinstance(v, Constant) and v.type == I1 and v.value == 1

    def test_select_const_cond(self, builder):
        x = builder.function.args[0]
        y = builder.add(x, 5)
        assert builder.select(builder.i1(True), x, y) is x
        assert builder.select(builder.i1(False), x, y) is y

    def test_cast_noop_elided(self, builder):
        x = builder.function.args[0]
        assert builder.zext(x, I32) is x

    def test_cast_const_folds(self, builder):
        v = builder.sext(Constant(I32, -1), I64)
        assert isinstance(v, Constant) and v.signed() == -1

    def test_ptradd_zero_elided(self, module):
        func, b = make_function(module, params=(PTR,))
        assert b.ptradd(func.args[0], 0) is func.args[0]


class TestAddressHelpers:
    def test_gep_uses_layout_offset(self, module):
        sty = StructType("S", (("a", I32), ("b", F64)))
        func, b = make_function(module, params=(PTR,))
        p = b.gep(func.args[0], sty, "b")
        assert isinstance(p, PtrAdd)
        assert p.offset.value == DATA_LAYOUT.field_offset(sty, "b")

    def test_array_gep_constant_index(self, module):
        func, b = make_function(module, params=(PTR,))
        p = b.array_gep(func.args[0], F64, 3)
        assert isinstance(p, PtrAdd) and p.offset.value == 24

    def test_array_gep_dynamic_index(self, module):
        func, b = make_function(module, params=(PTR, I64), arg_names=["p", "i"])
        p = b.array_gep(func.args[0], F64, func.args[1])
        assert isinstance(p, PtrAdd)

    def test_array_gep_widens_i32_index(self, module):
        func, b = make_function(module, params=(PTR, I32), arg_names=["p", "i"])
        p = b.array_gep(func.args[0], F64, func.args[1])
        assert isinstance(p, PtrAdd)
        assert p.offset.type == I64


class TestControlFlowBuilding:
    def test_phi_inserted_at_top(self, module):
        func, b = make_function(module)
        v = b.add(func.args[0], 1)
        phi = b.phi(I32, "p")
        assert func.entry.instructions[0] is phi
        b.ret(v)

    def test_store_rejects_python_numbers(self, module):
        func, b = make_function(module, params=(PTR,))
        with pytest.raises(TypeError):
            b.store(3, func.args[0])

    def test_intrinsic_declares_once(self, module):
        func, b = make_function(module)
        b.thread_id()
        b.thread_id()
        assert "gpu.thread_id" in module.functions
        b.ret(func.args[0])
        verify_module(module)

    def test_assume_builds_i1(self, module):
        func, b = make_function(module)
        b.assume(b.icmp("eq", func.args[0], b.i32(0)))
        b.ret(func.args[0])
        verify_module(module)


class TestCoercion:
    def test_pair_coercion_int_literal(self, builder):
        x = builder.function.args[0]  # i32
        v = builder.add(x, 7)
        assert isinstance(v, BinOp)
        assert v.rhs.type == I32

    def test_float_helpers(self, module):
        func, b = make_function(module, ret=F64, params=(F64,))
        v = b.fmul(func.args[0], 2.0)
        assert v.type == F64
        b.ret(v)
        verify_module(module)
