"""Call graph construction, recursion and address-taken tracking."""

from repro.ir import CallGraph, Function, FunctionType, I32, Module, PTR, VOID
from tests.conftest import make_function, make_kernel


def build_chain(module):
    """kernel -> a -> b; c is unreachable; b passed as fn-ptr to a."""
    b_fn, bb = make_function(module, "b", ret=VOID, params=())
    bb.ret()
    a_fn, ab = make_function(module, "a", ret=VOID, params=())
    ab.call(b_fn, [])
    ab.ret()
    c_fn, cb = make_function(module, "c", ret=VOID, params=())
    cb.ret()
    kern, kb = make_kernel(module, params=())
    kb.call(a_fn, [])
    kb.ret()
    return kern, a_fn, b_fn, c_fn


class TestCallGraph:
    def test_edges(self, module):
        kern, a, b, c = build_chain(module)
        cg = CallGraph(module)
        assert cg.callees(kern) == {a}
        assert cg.callers(b) == {a}
        assert cg.callees(c) == set()

    def test_transitive(self, module):
        kern, a, b, c = build_chain(module)
        cg = CallGraph(module)
        assert cg.transitive_callees(kern) == {a, b}
        assert cg.transitive_callers(b) == {a, kern}

    def test_reachable_from_kernels(self, module):
        kern, a, b, c = build_chain(module)
        cg = CallGraph(module)
        reached = cg.reachable_from_kernels()
        assert {kern, a, b} <= reached
        assert c not in reached

    def test_direct_recursion(self, module):
        f, fb = make_function(module, "rec", ret=VOID, params=())
        fb.call(f, [])
        fb.ret()
        cg = CallGraph(module)
        assert cg.is_recursive(f)

    def test_mutual_recursion(self, module):
        f = module.add_function(Function("f", FunctionType(VOID, ())))
        g = module.add_function(Function("g", FunctionType(VOID, ())))
        from repro.ir import IRBuilder

        fb = IRBuilder(module, f.add_block("entry"))
        fb.call(g, [])
        fb.ret()
        gb = IRBuilder(module, g.add_block("entry"))
        gb.call(f, [])
        gb.ret()
        cg = CallGraph(module)
        assert cg.is_recursive(f) and cg.is_recursive(g)

    def test_non_recursive(self, module):
        kern, a, b, c = build_chain(module)
        cg = CallGraph(module)
        assert not cg.is_recursive(a)

    def test_address_taken_via_call_argument(self, module):
        body, bb = make_function(module, "body", ret=VOID, params=())
        bb.ret()
        runtime = module.declare("rt_loop", FunctionType(VOID, (PTR,)))
        kern, kb = make_kernel(module, params=())
        kb.call(runtime, [body])
        kb.ret()
        cg = CallGraph(module)
        assert body in cg.address_taken
        assert cg.has_unknown_callers(body)
        assert body in cg.reachable_from_kernels()

    def test_call_sites(self, module):
        kern, a, b, c = build_chain(module)
        cg = CallGraph(module)
        assert len(cg.call_sites(kern, a)) == 1
        assert len(cg.all_call_sites_of(b)) == 1

    def test_bottom_up_order(self, module):
        kern, a, b, c = build_chain(module)
        cg = CallGraph(module)
        order = cg.bottom_up_order()
        assert order.index(b) < order.index(a) < order.index(kern)
