"""Dominators, reverse post-order and reachability (with property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Function, FunctionType, I32, IRBuilder, Module, VOID
from repro.ir.cfg import (
    DominatorTree,
    block_can_reach,
    instruction_can_reach,
    predecessors,
    reachable_blocks,
    reverse_post_order,
)
from tests.conftest import make_function


def diamond(module):
    """entry -> (then|else) -> merge; returns (func, blocks)."""
    func, b = make_function(module)
    then = func.add_block("then")
    els = func.add_block("else")
    merge = func.add_block("merge")
    cond = b.icmp("eq", func.args[0], b.i32(0))
    b.cond_br(cond, then, els)
    b.set_insert_point(then)
    b.br(merge)
    b.set_insert_point(els)
    b.br(merge)
    b.set_insert_point(merge)
    b.ret(func.args[0])
    return func, (func.entry, then, els, merge)


def loop(module):
    """entry -> header <-> body, header -> exit."""
    func, b = make_function(module)
    header = func.add_block("header")
    body = func.add_block("body")
    exit_ = func.add_block("exit")
    b.br(header)
    b.set_insert_point(header)
    cond = b.icmp("slt", func.args[0], b.i32(10))
    b.cond_br(cond, body, exit_)
    b.set_insert_point(body)
    b.br(header)
    b.set_insert_point(exit_)
    b.ret(func.args[0])
    return func, (func.entry, header, body, exit_)


class TestRPO:
    def test_entry_first(self, module):
        func, (entry, then, els, merge) = diamond(module)
        rpo = reverse_post_order(func)
        assert rpo[0] is entry
        assert rpo[-1] is merge

    def test_dominator_precedes_dominatee(self, module):
        func, (entry, header, body, exit_) = loop(module)
        rpo = reverse_post_order(func)
        assert rpo.index(entry) < rpo.index(header) < rpo.index(body)

    def test_unreachable_excluded(self, module):
        func, b = make_function(module)
        b.ret(func.args[0])
        dead = func.add_block("dead")
        b.set_insert_point(dead)
        b.ret(func.args[0])
        assert dead not in reverse_post_order(func)
        assert dead not in reachable_blocks(func)


class TestDominators:
    def test_diamond(self, module):
        func, (entry, then, els, merge) = diamond(module)
        dom = DominatorTree(func)
        assert dom.dominates_block(entry, merge)
        assert not dom.dominates_block(then, merge)
        assert not dom.dominates_block(then, els)
        assert dom.idom[merge] is entry
        assert dom.idom[then] is entry
        assert dom.idom[entry] is None

    def test_loop(self, module):
        func, (entry, header, body, exit_) = loop(module)
        dom = DominatorTree(func)
        assert dom.dominates_block(header, body)
        assert dom.dominates_block(header, exit_)
        assert not dom.dominates_block(body, exit_)

    def test_instruction_dominance_same_block(self, module):
        func, b = make_function(module)
        v1 = b.add(func.args[0], 1)
        v2 = b.add(v1, 2)
        b.ret(v2)
        dom = DominatorTree(func)
        assert dom.dominates(v1, v2)
        assert not dom.dominates(v2, v1)

    def test_reflexive_block_dominance(self, module):
        func, (entry, *_rest) = diamond(module)
        dom = DominatorTree(func)
        assert dom.dominates_block(entry, entry)

    def test_domination_is_transitive_property(self, module):
        """idom chains form a tree: every reachable block's idom chain
        ends at the entry."""
        func, blocks = loop(module)
        dom = DominatorTree(func)
        for block in reachable_blocks(func):
            runner = block
            steps = 0
            while dom.idom.get(runner) is not None:
                runner = dom.idom[runner]
                steps += 1
                assert steps <= len(func.blocks)
            assert runner is func.entry


class TestReachability:
    def test_forward_only(self, module):
        func, (entry, then, els, merge) = diamond(module)
        assert block_can_reach(entry, merge)
        assert not block_can_reach(merge, entry)
        assert not block_can_reach(then, els)

    def test_loop_reaches_itself(self, module):
        func, (entry, header, body, exit_) = loop(module)
        assert block_can_reach(body, body)
        assert block_can_reach(header, header)
        assert not block_can_reach(exit_, exit_)

    def test_instruction_reachability_in_block(self, module):
        func, b = make_function(module)
        v1 = b.add(func.args[0], 1)
        v2 = b.add(v1, 2)
        b.ret(v2)
        assert instruction_can_reach(v1, v2)
        assert not instruction_can_reach(v2, v1)

    def test_instruction_reachability_through_loop(self, module):
        func, (entry, header, body, exit_) = loop(module)
        header_inst = header.instructions[0]
        body_inst = body.instructions[0]
        assert instruction_can_reach(header_inst, body_inst)
        assert instruction_can_reach(body_inst, header_inst)  # via back edge


@st.composite
def random_cfg(draw):
    """Build a random single-entry CFG and return (module, func)."""
    module = Module("rand")
    func, b = make_function(module)
    n_blocks = draw(st.integers(min_value=1, max_value=8))
    blocks = [func.entry] + [func.add_block(f"b{i}") for i in range(n_blocks)]
    builder = IRBuilder(module)
    for i, block in enumerate(blocks):
        builder.set_insert_point(block)
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            builder.ret(func.args[0])
        elif kind == 1:
            target = blocks[draw(st.integers(0, len(blocks) - 1))]
            builder.br(target)
        else:
            cond = builder.icmp("eq", func.args[0], builder.i32(i))
            t = blocks[draw(st.integers(0, len(blocks) - 1))]
            f = blocks[draw(st.integers(0, len(blocks) - 1))]
            builder.cond_br(cond, t, f)
    return module, func


class TestDominatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_entry_dominates_all_reachable(self, cfg):
        _, func = cfg
        dom = DominatorTree(func)
        for block in reachable_blocks(func):
            assert dom.dominates_block(func.entry, block)

    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_idom_dominates_all_preds_paths(self, cfg):
        """The immediate dominator of B must appear on every path to B —
        check it dominates every reachable predecessor of B."""
        _, func = cfg
        dom = DominatorTree(func)
        reachable = reachable_blocks(func)
        preds = predecessors(func)
        for block in reachable:
            idom = dom.idom.get(block)
            if idom is None:
                continue
            for pred in preds[block]:
                if pred in reachable:
                    assert dom.dominates_block(idom, pred) or idom is block

    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_rpo_covers_exactly_reachable(self, cfg):
        _, func = cfg
        assert set(reverse_post_order(func)) == reachable_blocks(func)
