"""Textual IR rendering."""

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    F64,
    GlobalVariable,
    I32,
    I64,
    Module,
    PTR,
    StructType,
    print_function,
    print_module,
)
from tests.conftest import make_function, make_kernel


class TestPrinter:
    def test_function_header(self, module):
        func, b = make_function(module, name="foo")
        b.ret(func.args[0])
        text = print_function(func)
        assert "define i32 @foo(i32 %x)" in text or "define i32 @foo(i32 %arg0)" in text

    def test_declaration(self, module):
        from repro.ir import FunctionType, VOID

        module.declare("ext", FunctionType(VOID, (I32,)))
        text = print_module(module)
        assert "declare void @ext(i32" in text

    def test_unique_names_for_clashing_values(self, module):
        func, b = make_function(module)
        v1 = b.add(func.args[0], 1, "v")
        v2 = b.add(func.args[0], 2, "v")
        v3 = b.add(v1, v2)
        b.ret(v3)
        text = print_function(func)
        assert "%v =" in text and "%v.1 =" in text

    def test_instruction_name_does_not_shadow_argument(self, module):
        func, b = make_function(module, arg_names=["x"])
        v = b.add(func.args[0], 1, "x")
        b.ret(v)
        text = print_function(func)
        assert "%x.1 = add i32 %x, 1" in text

    def test_globals_render_with_addrspace(self, module):
        module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        text = print_module(module)
        assert "@state = internal addrspace(3) global i32 zeroinitializer" in text

    def test_struct_types_rendered(self, module):
        module.add_struct_type(StructType("Pair", (("a", I32), ("b", F64))))
        text = print_module(module)
        assert "%Pair = type { i32 a, double b }" in text

    def test_full_kernel_smoke(self, module):
        func, b = make_kernel(module, params=(PTR, I64), arg_names=["p", "n"])
        loop = func.add_block("loop")
        exit_ = func.add_block("exit")
        b.br(loop)
        b.set_insert_point(loop)
        iv = b.phi(I64, "iv")
        iv.add_incoming(b.i64(0), func.entry)
        v = b.load(F64, b.array_gep(func.args[0], F64, iv))
        b.store(b.fmul(v, b.f64(2.0)), b.array_gep(func.args[0], F64, iv))
        nxt = b.add(iv, b.i64(1))
        iv.add_incoming(nxt, loop)
        b.cond_br(b.icmp("slt", nxt, func.args[1]), loop, exit_)
        b.set_insert_point(exit_)
        b.ret()
        text = print_function(func)
        for fragment in ("phi i64", "load double", "store double",
                         "br %", "ret void", "kernel"):
            assert fragment in text, fragment
