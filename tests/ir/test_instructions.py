"""Instruction constructors, classification and cloning."""

import pytest

from repro.ir import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Constant,
    F64,
    FCmp,
    Function,
    FunctionType,
    I1,
    I32,
    I64,
    ICmp,
    Load,
    Module,
    Phi,
    PTR,
    PtrAdd,
    Ret,
    Select,
    Store,
    Unreachable,
    VOID,
)
from repro.ir.instructions import clone_instruction
from repro.ir.module import BasicBlock
from repro.ir.values import const_float, const_int, null_pointer


def c32(v):
    return const_int(v, I32)


class TestConstruction:
    def test_binop_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinOp("add", c32(1), Constant(I64, 1))

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("frobnicate", c32(1), c32(1))

    def test_icmp_result_is_i1(self):
        assert ICmp("slt", c32(1), c32(2)).type == I1

    def test_unknown_icmp_predicate(self):
        with pytest.raises(ValueError):
            ICmp("wat", c32(1), c32(2))

    def test_fcmp(self):
        inst = FCmp("olt", const_float(1.0), const_float(2.0))
        assert inst.type == I1 and inst.predicate == "olt"

    def test_select_requires_i1(self):
        with pytest.raises(TypeError):
            Select(c32(1), c32(1), c32(2))

    def test_select_arm_mismatch(self):
        from repro.ir.values import const_i1

        with pytest.raises(TypeError):
            Select(const_i1(True), c32(1), Constant(I64, 2))

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(I32, c32(0))

    def test_store_requires_pointer(self):
        with pytest.raises(TypeError):
            Store(c32(1), c32(0))

    def test_ptradd_offset_must_be_int(self):
        with pytest.raises(TypeError):
            PtrAdd(null_pointer(), const_float(1.0))

    def test_condbr_requires_i1(self):
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        with pytest.raises(TypeError):
            CondBr(c32(1), b1, b2)

    def test_atomicrmw_ops(self):
        inst = AtomicRMW("add", null_pointer(), c32(1))
        assert inst.operation == "add"
        with pytest.raises(ValueError):
            AtomicRMW("nand", null_pointer(), c32(1))


class TestClassification:
    def test_terminators(self):
        target = BasicBlock("bb")
        assert Br(target).is_terminator
        assert Ret().is_terminator
        assert Unreachable().is_terminator
        assert not BinOp("add", c32(1), c32(1)).is_terminator

    def test_side_effects(self):
        assert Store(c32(1), null_pointer()).may_have_side_effects()
        assert AtomicRMW("add", null_pointer(), c32(1)).may_have_side_effects()
        assert not BinOp("add", c32(1), c32(1)).may_have_side_effects()

    def test_call_side_effects_depend_on_callee(self):
        m = Module()
        pure = m.add_function(Function("p", FunctionType(I32, ())))
        pure.attrs.add("readnone")
        impure = m.add_function(Function("q", FunctionType(I32, ())))
        assert not Call(pure, [], I32).may_have_side_effects()
        assert Call(impure, [], I32).may_have_side_effects()

    def test_trivially_dead(self):
        dead = BinOp("add", c32(1), c32(1))
        assert dead.is_trivially_dead()
        live = BinOp("add", c32(1), c32(1))
        BinOp("mul", live, live)  # creates uses
        assert not live.is_trivially_dead()


class TestPhi:
    def test_incoming_bookkeeping(self):
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        phi = Phi(I32)
        phi.add_incoming(c32(1), b1)
        phi.add_incoming(c32(2), b2)
        assert phi.incoming_value_for(b1).value == 1
        phi.remove_incoming(b1)
        assert len(phi.operands) == 1
        assert phi.incoming_blocks == [b2]
        with pytest.raises(KeyError):
            phi.incoming_value_for(b1)

    def test_remove_incoming_fixes_use_indices(self):
        b1, b2, b3 = BasicBlock("a"), BasicBlock("b"), BasicBlock("c")
        phi = Phi(I32)
        x, y, z = c32(1), c32(2), c32(3)
        phi.add_incoming(x, b1)
        phi.add_incoming(y, b2)
        phi.add_incoming(z, b3)
        phi.remove_incoming(b1)
        # y and z uses must have shifted down consistently.
        assert [u.index for u in y.uses] == [0]
        assert [u.index for u in z.uses] == [1]

    def test_type_mismatch_rejected(self):
        phi = Phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(Constant(I64, 1), BasicBlock("a"))


class TestErase:
    def test_erase_with_uses_refuses(self, module):
        from tests.conftest import make_function

        func, b = make_function(module)
        v = b.add(func.args[0], 1)
        b.ret(v)
        inst = v  # used by ret
        with pytest.raises(ValueError):
            inst.erase_from_parent()

    def test_erase_removes_operand_uses(self, module):
        from tests.conftest import make_function

        func, b = make_function(module)
        v = b.add(func.args[0], 1)
        b.ret(func.args[0])
        v.erase_from_parent()
        assert all(u.user is not v for u in func.args[0].uses)


class TestClone:
    def test_clone_remaps_operands(self):
        a, b = c32(1), c32(2)
        inst = BinOp("add", a, b)
        c = c32(10)
        clone = clone_instruction(inst, {a: c})
        assert clone.lhs is c and clone.rhs is b
        assert clone is not inst

    def test_clone_preserves_attrs(self):
        inst = BinOp("add", c32(1), c32(2))
        inst.attrs.add("special")
        clone = clone_instruction(inst, {})
        assert "special" in clone.attrs
        assert clone.attrs is not inst.attrs

    def test_clone_every_kind(self, module):
        from tests.conftest import make_function

        func, b = make_function(module, params=(I32, PTR))
        x, p = func.args
        values = [
            b.add(x, 1),
            b.icmp("slt", x, c32(3)),
            b.fcmp("olt", const_float(1.0), const_float(2.0)),
            b.select(b.icmp("eq", x, c32(0)), x, c32(9)),
            b.sext(x, I64),
            b.alloca(I32),
            b.load(I32, p),
            b.ptradd(p, 8),
            b.atomic_rmw("add", p, x),
        ]
        b.store(x, p)
        b.ret(x)
        for inst in list(func.instructions()):
            clone = clone_instruction(inst, {})
            assert clone.opcode == inst.opcode
