"""§VII — remaining challenges, and the ones this implementation already
covers beyond the paper's prototype."""

import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import GlobalVariable, I64, PTR_GLOBAL
from repro.passes.barrier_elim import BarrierEliminationPass, _is_any_barrier
from repro.passes.pass_manager import PassContext, PipelineConfig
from tests.conftest import make_kernel


class TestLoopBoundsFromMemory:
    """Paper §VII: 'if a work-shared loop uses bounds loaded from memory
    … their side-effect will currently cause barrier elimination to
    consider the barrier as essential when it is in fact not.'

    Our barrier eliminator classifies loads as non-effects, so the
    paper's future-work item is already handled; this test pins that.
    """

    def test_loads_between_barriers_do_not_block_elimination(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["bounds"])
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        bound = b.load(I64, func.args[0], "n")  # bound loaded from memory
        b.aligned_barrier()
        b.store(bound, b.ptradd(func.args[0], 8))
        b.ret()
        BarrierEliminationPass().run(module, PassContext(config=PipelineConfig()))
        barriers = sum(1 for i in func.instructions() if _is_any_barrier(i))
        assert barriers == 1  # the redundant one is gone


class TestByReferenceAggregates:
    """Paper §VII: aggregates reach OpenMP kernels by reference, costing
    an extra load; LICM bounds it to one load per field per kernel."""

    def test_struct_field_loads_hoisted_out_of_loop(self):
        from repro.apps import xsbench
        from repro.frontend.driver import CompileOptions

        result = xsbench.run(CompileOptions(runtime="new"))
        kern = result.compiled.kernel("xs_lookup")
        # Count loads through the conf pointer (the third-from-last arg).
        conf = kern.args[-1]
        from repro.ir.instructions import Load
        from repro.passes.cleanup import resolve_pointer_base
        from repro.ir.cfg import DominatorTree, predecessors

        dom = DominatorTree(kern)
        loop_headers = {
            succ
            for block in kern.blocks
            for succ in block.successors()
            if dom.dominates_block(succ, block)
        }
        conf_loads_in_loops = 0
        for block in kern.blocks:
            in_loop = any(dom.dominates_block(h, block) and h is not block
                          for h in loop_headers)
            for inst in block.instructions:
                if isinstance(inst, Load):
                    base, _ = resolve_pointer_base(inst.pointer)
                    if base is conf and in_loop:
                        conf_loads_in_loops += 1
        # The binary-search While loop is inside the kernel; conf field
        # loads must have been hoisted out of every loop.
        assert conf_loads_in_loops == 0

    def test_cuda_has_no_conf_loads_at_all(self):
        from repro.apps import xsbench
        from repro.frontend.driver import CompileOptions

        result = xsbench.run(CompileOptions(mode="cuda"))
        kern = result.compiled.kernel("xs_lookup")
        # CUDA receives fields by value: no pointer-typed conf at all.
        from repro.ir.types import PointerType

        pointer_args = [a for a in kern.args if isinstance(a.type, PointerType)]
        assert len(pointer_args) == 5  # the data arrays only
