"""End-to-end pipeline properties on the canonical SAXPY kernel."""

import numpy as np
import pytest

from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.passes import PipelineConfig, run_openmp_opt_pipeline
from repro.passes.remarks import RemarkCollector
from repro.runtime.config import RuntimeConfig
from repro.runtime.interface import NEW_RUNTIME, OLD_RUNTIME
from repro.vgpu import VirtualGPU
from repro.vgpu.resources import shared_memory_usage
from tests.runtime.conftest import (
    add_saxpy_body,
    add_spmd_kernel,
    build_runtime_module,
    run_saxpy,
)


def optimized_saxpy(rt=NEW_RUNTIME, config=None, rt_config=None):
    module = build_runtime_module(rt, rt_config)
    body = add_saxpy_body(module)
    add_spmd_kernel(module, rt, body)
    remarks = RemarkCollector()
    run_openmp_opt_pipeline(module, config or PipelineConfig(verify_each=True), remarks)
    verify_module(module)
    return module, remarks


class TestNearZeroOverhead:
    """The headline result: a fully optimized SPMD kernel is
    indistinguishable from a native GPU kernel."""

    def test_no_runtime_calls_remain(self):
        module, _ = optimized_saxpy()
        kern = module.get_function("kern")
        for inst in kern.instructions():
            if isinstance(inst, Call):
                assert inst.callee is not None
                assert not inst.callee.name.startswith("__kmpc")

    def test_no_shared_memory_remains(self):
        module, _ = optimized_saxpy()
        kern = module.get_function("kern")
        assert shared_memory_usage(kern, module) == 0

    def test_no_barriers_remain(self):
        from repro.passes.barrier_elim import _is_any_barrier

        module, _ = optimized_saxpy()
        kern = module.get_function("kern")
        assert not any(_is_any_barrier(i) for i in kern.instructions())

    def test_runtime_functions_pruned(self):
        module, _ = optimized_saxpy()
        defined = [f.name for f in module.defined_functions()]
        assert defined == ["kern"]

    def test_no_assumes_in_final_binary(self):
        module, _ = optimized_saxpy()
        for func in module.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, Call) and inst.callee is not None:
                    assert inst.callee.name != "llvm.assume"

    def test_semantics_preserved(self):
        module, _ = optimized_saxpy()
        _, out, expected = run_saxpy(module, n=200, teams=4, threads=16)
        assert np.allclose(out, expected)


class TestOversubscription:
    def test_loop_removed_with_assumption(self):
        rt_config = RuntimeConfig(assume_threads_oversubscription=True)
        module, _ = optimized_saxpy(rt_config=rt_config)
        kern = module.get_function("kern")
        # No back edges: every block's successors come strictly later.
        order = {blk: i for i, blk in enumerate(kern.blocks)}
        for blk in kern.blocks:
            for succ in blk.successors():
                assert order[succ] > order[blk], "loop survived oversubscription"

    def test_assumption_checked_at_runtime_in_debug(self):
        from repro.runtime.config import DEBUG_ASSERTIONS
        from repro.vgpu import TrapError

        rt_config = RuntimeConfig(
            assume_threads_oversubscription=True, debug_kind=DEBUG_ASSERTIONS
        )
        module, _ = optimized_saxpy(rt_config=rt_config)
        # Launch with fewer threads than iterations: the user's promise
        # is broken and the debug build must catch it (§III-F/G).
        with pytest.raises(TrapError, match="over-subscription"):
            run_saxpy(module, n=500, teams=1, threads=4,
                      env={"DEBUG": DEBUG_ASSERTIONS})

    def test_registers_reduced(self):
        from repro.vgpu.registers import estimate_kernel_registers

        base_module, _ = optimized_saxpy()
        over_module, _ = optimized_saxpy(
            rt_config=RuntimeConfig(assume_threads_oversubscription=True))
        base = estimate_kernel_registers(base_module.get_function("kern"), base_module)
        over = estimate_kernel_registers(over_module.get_function("kern"), over_module)
        assert over < base


class TestLegacyAndNightly:
    def test_legacy_pipeline_keeps_old_rt_state(self):
        module, _ = optimized_saxpy(rt=OLD_RUNTIME, config=PipelineConfig.legacy())
        kern = module.get_function("kern")
        assert shared_memory_usage(kern, module) > 2000

    def test_nightly_pipeline_keeps_new_rt_stack(self):
        module, _ = optimized_saxpy(config=PipelineConfig.nightly())
        kern = module.get_function("kern")
        assert shared_memory_usage(kern, module) > 10000

    def test_o0_pipeline_is_identity(self):
        module = build_runtime_module(NEW_RUNTIME)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, NEW_RUNTIME, body)
        before = sum(1 for f in module.defined_functions()
                     for _ in f.instructions())
        run_openmp_opt_pipeline(module, PipelineConfig.o0())
        after = sum(1 for f in module.defined_functions()
                    for _ in f.instructions())
        assert before == after

    def test_all_configs_compute_same_result(self):
        for config in (PipelineConfig(), PipelineConfig.legacy(),
                       PipelineConfig.nightly(), PipelineConfig.o0()):
            module = build_runtime_module(NEW_RUNTIME)
            body = add_saxpy_body(module)
            add_spmd_kernel(module, NEW_RUNTIME, body)
            run_openmp_opt_pipeline(module, config)
            _, out, expected = run_saxpy(module, n=100, teams=2, threads=16,
                                         debug_checks=False)
            assert np.allclose(out, expected), config


class TestAblationConfigs:
    """Each §IV sub-optimization flag must (a) preserve semantics and
    (b) leave strictly more overhead behind than the full pipeline."""

    @pytest.mark.parametrize("flag", [
        "enable_field_sensitive",
        "enable_reach_dom",
        "enable_assumed_content",
        "enable_invariant_prop",
        "enable_aligned_exec",
        "enable_barrier_elim",
    ])
    def test_semantics_with_flag_disabled(self, flag):
        config = PipelineConfig(verify_each=True)
        setattr(config, flag, False)
        module, _ = optimized_saxpy(config=config)
        _, out, expected = run_saxpy(module, n=100, teams=2, threads=16,
                                     debug_checks=False)
        assert np.allclose(out, expected)

    def test_field_sensitive_off_keeps_state(self):
        config = PipelineConfig(enable_field_sensitive=False)
        module, _ = optimized_saxpy(config=config)
        kern = module.get_function("kern")
        assert shared_memory_usage(kern, module) > 0
