"""Inliner, mem2reg and GVN/LICM."""

import numpy as np
import pytest

from repro.ir import (
    Alloca,
    Constant,
    F64,
    Function,
    FunctionType,
    I32,
    I64,
    PTR,
    PTR_GLOBAL,
    VOID,
    verify_module,
)
from repro.passes.cleanup import CleanupPass
from repro.passes.gvn import GVNPass, LICMPass
from repro.passes.inline import InlinePass, inline_call
from repro.passes.mem2reg import PromoteAllocasPass
from repro.passes.pass_manager import PassContext, PipelineConfig
from repro.vgpu import VirtualGPU
from tests.conftest import make_function, make_kernel


def ctx(**kw):
    return PassContext(config=PipelineConfig(**kw))


class TestInliner:
    def test_simple_inline_preserves_semantics(self, module):
        callee, cb = make_function(module, "sq", ret=I32, params=(I32,))
        callee.linkage = "internal"
        cb.ret(cb.mul(callee.args[0], callee.args[0]))
        kern, b = make_kernel(module, params=(PTR_GLOBAL, I32), arg_names=["out", "x"])
        v = b.call(callee, [kern.args[1]])
        b.store(b.sext(v, I64), kern.args[0])
        b.ret()
        verify_module(module)

        InlinePass().run(module, ctx())
        CleanupPass().run(module, ctx())
        verify_module(module)
        assert not any(i.opcode == "call" for i in kern.instructions())

        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out, 9], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == 81

    def test_multi_return_callee(self, module):
        callee, cb = make_function(module, "absish", ret=I32, params=(I32,))
        callee.linkage = "internal"
        neg = callee.add_block("neg")
        pos = callee.add_block("pos")
        cb.cond_br(cb.icmp("slt", callee.args[0], cb.i32(0)), neg, pos)
        cb.set_insert_point(neg)
        cb.ret(cb.sub(cb.i32(0), callee.args[0]))
        cb.set_insert_point(pos)
        cb.ret(callee.args[0])
        kern, b = make_kernel(module, params=(PTR_GLOBAL, I32), arg_names=["out", "x"])
        v = b.call(callee, [kern.args[1]])
        b.store(b.sext(v, I64), kern.args[0])
        b.ret()
        InlinePass().run(module, ctx())
        verify_module(module)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out, Constant(I32, -5).value], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == 5

    def test_recursive_function_not_inlined(self, module):
        rec, rb = make_function(module, "rec", ret=I32, params=(I32,))
        rec.linkage = "internal"
        base = rec.add_block("base")
        step = rec.add_block("step")
        rb.cond_br(rb.icmp("sle", rec.args[0], rb.i32(0)), base, step)
        rb.set_insert_point(base)
        rb.ret(rb.i32(0))
        rb.set_insert_point(step)
        sub = rb.call(rec, [rb.sub(rec.args[0], rb.i32(1))])
        rb.ret(rb.add(sub, rb.i32(1)))
        kern, b = make_kernel(module, params=(I32,))
        b.call(rec, [kern.args[0]])
        b.ret()
        context = ctx()
        InlinePass().run(module, context)
        verify_module(module)
        assert "rec" in module.functions
        assert not module.get_function("rec").is_declaration
        assert context.remarks.contains("recursive")

    def test_function_pointer_argument_becomes_direct_call(self, module):
        """Inlining the worksharing wrapper devirtualizes the body call."""
        body, bb = make_function(module, "body", ret=VOID, params=(I64,))
        body.linkage = "internal"
        bb.ret()
        wrapper, wb = make_function(module, "wrapper", ret=VOID, params=(PTR, I64),
                                    arg_names=["fn", "iv"])
        wrapper.linkage = "internal"
        wrapper.attrs.add("alwaysinline")
        wb.call_indirect(wrapper.args[0], [wrapper.args[1]], VOID)
        wb.ret()
        kern, b = make_kernel(module, params=(I64,))
        b.call(wrapper, [body, kern.args[0]])
        b.ret()
        InlinePass().run(module, ctx())
        CleanupPass().run(module, ctx())
        verify_module(module)
        # After inlining the wrapper, the indirect call's callee operand
        # is the function itself -> further inlined or direct.
        from repro.ir.instructions import Call

        for inst in kern.instructions():
            if isinstance(inst, Call):
                assert inst.callee is not None

    def test_alloca_hoisted_to_caller_entry(self, module):
        helper, hb = make_function(module, "helper", ret=I32, params=(I32,))
        helper.linkage = "internal"
        slot = hb.alloca(I32)
        hb.store(helper.args[0], slot)
        hb.ret(hb.load(I32, slot))
        kern, b = make_kernel(module, params=(I32,))
        loop = kern.add_block("loop")
        done = kern.add_block("done")
        b.br(loop)
        b.set_insert_point(loop)
        v = b.call(helper, [kern.args[0]])
        b.cond_br(b.icmp("eq", v, b.i32(0)), done, loop)
        b.set_insert_point(done)
        b.ret()
        InlinePass().run(module, ctx())
        verify_module(module)
        allocas = [i for i in kern.instructions() if isinstance(i, Alloca)]
        assert all(a.parent is kern.entry for a in allocas)


class TestMem2Reg:
    def test_scalar_slot_promoted(self, module):
        func, b = make_function(module)
        slot = b.alloca(I32)
        b.store(func.args[0], slot)
        v = b.load(I32, slot)
        b.ret(v)
        PromoteAllocasPass().run(module, ctx())
        verify_module(module)
        assert not any(isinstance(i, Alloca) for i in func.instructions())
        assert not any(i.opcode in ("load", "store") for i in func.instructions())

    def test_loop_variable_becomes_phi(self, module):
        func, b = make_function(module)
        slot = b.alloca(I32, "i")
        b.store(b.i32(0), slot)
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        b.br(header)
        b.set_insert_point(header)
        iv = b.load(I32, slot)
        b.cond_br(b.icmp("slt", iv, func.args[0]), body, exit_)
        b.set_insert_point(body)
        iv2 = b.load(I32, slot)
        b.store(b.add(iv2, 1), slot)
        b.br(header)
        b.set_insert_point(exit_)
        b.ret(b.load(I32, slot))
        verify_module(module)
        PromoteAllocasPass().run(module, ctx())
        verify_module(module)
        assert not any(isinstance(i, Alloca) for i in func.instructions())
        assert any(i.opcode == "phi" for i in func.instructions())

    def test_promotion_preserves_execution(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL, I64), arg_names=["out", "n"])
        slot = b.alloca(I64, "acc")
        b.store(b.i64(0), slot)
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        ivslot = b.alloca(I64, "i")
        b.store(b.i64(0), ivslot)
        b.br(header)
        b.set_insert_point(header)
        iv = b.load(I64, ivslot)
        b.cond_br(b.icmp("slt", iv, func.args[1]), body, exit_)
        b.set_insert_point(body)
        acc = b.load(I64, slot)
        b.store(b.add(acc, b.load(I64, ivslot)), slot)
        b.store(b.add(b.load(I64, ivslot), b.i64(1)), ivslot)
        b.br(header)
        b.set_insert_point(exit_)
        b.store(b.load(I64, slot), func.args[0])
        b.ret()
        verify_module(module)

        gpu_ref = VirtualGPU(module)
        out_ref = gpu_ref.alloc_array(np.zeros(1, dtype=np.int64))
        gpu_ref.launch("kern", [out_ref, 10], 1, 1)
        expected = gpu_ref.read_array(out_ref, np.int64, 1)[0]

        PromoteAllocasPass().run(module, ctx())
        CleanupPass().run(module, ctx())
        verify_module(module)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out, 10], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == expected == 45

    def test_address_taken_alloca_not_promoted(self, module):
        func, b = make_function(module, params=(PTR,))
        slot = b.alloca(I32)
        b.store(b.i32(1), slot)
        b.ptradd(slot, 0)  # harmless, elided
        escaped = b.ptradd(slot, 4)  # offset use -> not promotable
        b.load(I32, escaped, volatile=True)
        b.ret(b.load(I32, slot))
        PromoteAllocasPass().run(module, ctx())
        assert any(isinstance(i, Alloca) for i in func.instructions())


class TestGVN:
    def test_redundant_expression_removed(self, module):
        func, b = make_function(module)
        a1 = b.add(func.args[0], 5)
        a2 = b.add(func.args[0], 5)
        b.ret(b.mul(a1, a2))
        GVNPass().run(module, ctx())
        adds = [i for i in func.instructions() if i.opcode == "add"]
        assert len(adds) == 1

    def test_commutative_normalization(self, module):
        func, b = make_function(module, params=(I32, I32), arg_names=["a", "b"])
        x, y = func.args
        v1 = b.add(x, y)
        v2 = b.add(y, x)
        b.ret(b.mul(v1, v2))
        GVNPass().run(module, ctx())
        adds = [i for i in func.instructions() if i.opcode == "add"]
        assert len(adds) == 1

    def test_readonly_noalias_load_cse(self, module):
        func, b = make_function(module, params=(PTR, PTR), arg_names=["ro", "out"])
        func.param_attrs[0] = {"readonly", "noalias"}
        v1 = b.load(I32, func.args[0])
        b.store(v1, func.args[1])
        v2 = b.load(I32, func.args[0])
        b.ret(v2)
        GVNPass().run(module, ctx())
        loads = [i for i in func.instructions() if i.opcode == "load"]
        assert len(loads) == 1

    def test_plain_load_not_cse(self, module):
        func, b = make_function(module, params=(PTR,))
        v1 = b.load(I32, func.args[0])
        v2 = b.load(I32, func.args[0])
        b.ret(b.add(v1, v2))
        GVNPass().run(module, ctx())
        loads = [i for i in func.instructions() if i.opcode == "load"]
        assert len(loads) == 2

    def test_sibling_scopes_do_not_leak(self, module):
        func, b = make_function(module)
        then = func.add_block("then")
        els = func.add_block("els")
        b.cond_br(b.icmp("eq", func.args[0], b.i32(0)), then, els)
        b.set_insert_point(then)
        v1 = b.add(func.args[0], 7)
        b.ret(v1)
        b.set_insert_point(els)
        v2 = b.add(func.args[0], 7)  # not dominated by v1: must stay
        b.ret(v2)
        GVNPass().run(module, ctx())
        verify_module(module)
        adds = [i for i in func.instructions() if i.opcode == "add"]
        assert len(adds) == 2


class TestLICM:
    def test_readonly_load_hoisted(self, module):
        func, b = make_function(module, params=(PTR, I32), arg_names=["conf", "n"])
        func.param_attrs[0] = {"readonly", "noalias"}
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        b.br(header)
        b.set_insert_point(header)
        iv = b.phi(I32, "iv")
        iv.add_incoming(b.i32(0), func.entry)
        b.cond_br(b.icmp("slt", iv, func.args[1]), body, exit_)
        b.set_insert_point(body)
        bound = b.load(I32, func.args[0], "bound")  # loop-invariant
        nxt = b.add(iv, bound)
        iv.add_incoming(nxt, body)
        b.br(header)
        b.set_insert_point(exit_)
        b.ret(iv)
        verify_module(module)
        LICMPass().run(module, ctx())
        verify_module(module)
        # The load must have moved to the preheader (entry block).
        assert any(i.opcode == "load" for i in func.entry.instructions)
        assert not any(i.opcode == "load" for i in body.instructions)

    def test_variant_load_not_hoisted(self, module):
        func, b = make_function(module, params=(PTR, I32), arg_names=["data", "n"])
        func.param_attrs[0] = {"readonly", "noalias"}
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        b.br(header)
        b.set_insert_point(header)
        iv = b.phi(I32, "iv")
        iv.add_incoming(b.i32(0), func.entry)
        b.cond_br(b.icmp("slt", iv, func.args[1]), body, exit_)
        b.set_insert_point(body)
        addr = b.array_gep(func.args[0], I32, iv)  # iv-dependent
        b.load(I32, addr, volatile=True)
        nxt = b.add(iv, 1)
        iv.add_incoming(nxt, body)
        b.br(header)
        b.set_insert_point(exit_)
        b.ret(iv)
        LICMPass().run(module, ctx())
        assert any(i.opcode == "load" for i in body.instructions)

    def test_store_never_hoisted(self, module):
        func, b = make_function(module, params=(PTR, I32), arg_names=["p", "n"])
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        b.br(header)
        b.set_insert_point(header)
        iv = b.phi(I32, "iv")
        iv.add_incoming(b.i32(0), func.entry)
        b.cond_br(b.icmp("slt", iv, func.args[1]), body, exit_)
        b.set_insert_point(body)
        b.store(iv, func.args[0])
        nxt = b.add(iv, 1)
        iv.add_incoming(nxt, body)
        b.br(header)
        b.set_insert_point(exit_)
        b.ret(iv)
        LICMPass().run(module, ctx())
        assert any(i.opcode == "store" for i in body.instructions)
