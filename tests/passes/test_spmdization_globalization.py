"""SPMDzation (§IV-A3) and globalization elimination (§IV-A2)."""

import numpy as np
import pytest

from repro.ir import Constant, I32, I64, PTR, PTR_GLOBAL, verify_module
from repro.frontend import ast as A
from repro.frontend.driver import CompileOptions, compile_program
from repro.frontend.lower import lower_program_openmp
from repro.ir.instructions import Call
from repro.passes.cleanup import CleanupPass
from repro.passes.globalization import GlobalizationEliminationPass
from repro.passes.internalize import InternalizePass
from repro.passes.pass_manager import PassContext, PipelineConfig, PassManager
from repro.passes.spmdization import SPMDizationPass, _find_init_call
from repro.runtime.config import RuntimeConfig
from repro.vgpu import VirtualGPU


def generic_program(store_to_global=False):
    """A kernel with a sequential preamble (generic lowering)."""
    from repro.ir.types import F64

    body = [A.StoreIdx(A.Arg("out"), A.Var("iv"),
                       A.CastTo(A.Var("iv"), F64) * A.Var("scale"))]
    from repro.ir.types import F64

    preamble = [A.Let("scale", A.Const(2.5, F64), F64)]
    return A.Program("gen", kernels=[A.KernelDef(
        "kern",
        params=[A.Param("out", PTR), A.Param("n", I64)],
        trip_count=A.Arg("n"),
        body=body,
        preamble=preamble,
    )])


def prep(module, **kw):
    ctx = PassContext(config=PipelineConfig(**kw))
    PassManager([InternalizePass(), CleanupPass()], ctx).run(module)
    return ctx


class TestSPMDization:
    def test_generic_kernel_converted(self):
        module, _ = lower_program_openmp(generic_program(), "new", RuntimeConfig())
        ctx = prep(module)
        changed = SPMDizationPass().run(module, ctx)
        assert changed
        init = _find_init_call(module.get_function("kern"))
        assert isinstance(init.args[0], Constant) and init.args[0].value == 1
        assert ctx.remarks.contains("SPMD mode")

    def test_deinit_flipped_too(self):
        module, _ = lower_program_openmp(generic_program(), "new", RuntimeConfig())
        ctx = prep(module)
        SPMDizationPass().run(module, ctx)
        kern = module.get_function("kern")
        for inst in kern.instructions():
            if isinstance(inst, Call) and inst.callee is not None \
                    and inst.callee.name.startswith("__kmpc_target_deinit"):
                assert inst.args[0].value == 1

    def test_disabled_by_flag(self):
        module, _ = lower_program_openmp(generic_program(), "new", RuntimeConfig())
        ctx = prep(module, enable_spmdization=False)
        assert not SPMDizationPass().run(module, ctx)

    def test_semantics_preserved_end_to_end(self):
        compiled = compile_program(generic_program(), CompileOptions(runtime="new"))
        gpu = VirtualGPU(compiled.module)
        n = 64
        out = gpu.alloc_array(np.zeros(n))
        args = compiled.abi("kern").marshal(gpu, {"out": out, "n": n})
        gpu.launch("kern", args, 2, 32)
        got = gpu.read_array(out, np.float64, n)
        assert np.allclose(got, np.arange(n) * 2.5)

    def test_external_store_guarded(self):
        """Stores to global memory in the sequential region get a
        single-thread guard plus an aligned barrier."""
        from repro.ir.types import F64

        program = A.Program("gen", kernels=[A.KernelDef(
            "kern",
            params=[A.Param("flag", PTR), A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"), A.Const(1.0, F64))],
            preamble=[A.Let("unused", A.Const(1, I64), I64)],
        )])
        program.kernels[0].body = (
            A.StoreIdx(A.Arg("out"), A.Var("iv"), A.Const(1.0, F64)),
        )
        module, _ = lower_program_openmp(program, "new", RuntimeConfig())
        # Manually add a sequential global store into the kernel work
        # block, before the parallel call.
        kern = module.get_function("kern")
        from repro.ir import IRBuilder

        work = kern.blocks[1]
        b = IRBuilder(module, work)
        from repro.ir.instructions import Store
        from repro.ir.values import Constant as C

        store = Store(C(I64, 77), kern.args[0])
        work.insert(0, store)
        verify_module(module)
        ctx = prep(module)
        changed = SPMDizationPass().run(module, ctx)
        assert changed
        assert ctx.remarks.contains("guarded sequential store")
        verify_module(module)
        # Execute: the flag must be written exactly once per team.
        CleanupPass().run(module, ctx)
        gpu = VirtualGPU(module)
        flag = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        out = gpu.alloc_array(np.zeros(64))
        gpu.launch("kern", [flag, out, 64], 2, 32)
        assert gpu.read_array(flag, np.int64, 1)[0] == 77

    def test_atomic_in_sequential_region_prevents_spmd(self):
        module, _ = lower_program_openmp(generic_program(), "new", RuntimeConfig())
        kern = module.get_function("kern")
        from repro.ir.instructions import AtomicRMW
        from repro.ir.values import Constant as C

        work = kern.blocks[1]
        work.insert(0, AtomicRMW("add", kern.args[0], C(I64, 1)))
        ctx = prep(module)
        assert not SPMDizationPass().run(module, ctx)
        assert ctx.remarks.contains("atomic")


class TestGlobalizationElimination:
    def _spmd_module(self):
        program = A.Program("c", kernels=[A.KernelDef(
            "kern",
            params=[A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"),
                             A.CastTo(A.Var("iv"), __import__("repro.ir.types", fromlist=["F64"]).F64))],
        )])
        return lower_program_openmp(program, "new", RuntimeConfig())[0]

    def test_spmd_capture_buffer_demoted(self):
        module = self._spmd_module()
        ctx = prep(module)
        changed = GlobalizationEliminationPass().run(module, ctx)
        assert changed
        assert ctx.remarks.contains("demoted")
        kern = module.get_function("kern")
        from repro.ir.instructions import Alloca

        assert any(isinstance(i, Alloca) for i in kern.instructions())
        assert not any(
            isinstance(i, Call) and i.callee is not None
            and i.callee.name == "__kmpc_alloc_shared"
            for i in kern.instructions()
        )

    def test_generic_kernel_buffer_kept_shared(self):
        module, _ = lower_program_openmp(generic_program(), "new", RuntimeConfig())
        ctx = prep(module)
        GlobalizationEliminationPass().run(module, ctx)
        kern = module.get_function("kern")
        assert any(
            isinstance(i, Call) and i.callee is not None
            and i.callee.name == "__kmpc_alloc_shared"
            for i in kern.instructions()
        )
        assert ctx.remarks.contains("generic-mode")

    def test_disabled_by_flag(self):
        module = self._spmd_module()
        ctx = prep(module, enable_globalization_elim=False)
        assert not GlobalizationEliminationPass().run(module, ctx)

    def test_escaping_allocation_not_demoted(self, module):
        """Allocation address passed to a non-runtime call stays shared
        (the MiniFMM recursion pattern)."""
        from repro.ir import Function, FunctionType, VOID
        from repro.runtime.interface import NEW_RUNTIME

        NEW_RUNTIME.populate(module, RuntimeConfig())
        sink = module.add_function(Function("sink", FunctionType(VOID, (PTR,)),
                                            linkage="internal"))
        from repro.ir import IRBuilder

        sb = IRBuilder(module, sink.add_block("entry"))
        sb.ret()
        from tests.conftest import make_kernel

        kern, b = make_kernel(module, params=())
        r = b.call(module.get_function("__kmpc_target_init"), [b.i32(1)])
        buf = b.call(module.get_function("__kmpc_alloc_shared"), [b.i64(16)])
        b.call(sink, [buf])
        b.call(module.get_function("__kmpc_free_shared"), [buf, b.i64(16)])
        b.call(module.get_function("__kmpc_target_deinit"), [b.i32(1)])
        b.ret()
        ctx = prep(module)
        GlobalizationEliminationPass().run(module, ctx)
        assert ctx.remarks.contains("escapes analysis")
