"""Inter-procedural conditional value propagation (§IV-B)."""

import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    ArrayType,
    Constant,
    GlobalVariable,
    I32,
    I64,
    PTR,
    PTR_GLOBAL,
    verify_module,
)
from repro.passes.cleanup import CleanupPass
from repro.passes.pass_manager import PassContext, PipelineConfig
from repro.passes.value_prop import (
    DeadStateStoreElimination,
    ValuePropagationPass,
)
from tests.conftest import make_function, make_kernel


def ctx(**kw):
    return PassContext(config=PipelineConfig(**kw))


def run_vp(module, **kw):
    context = ctx(**kw)
    ValuePropagationPass().run(module, context)
    CleanupPass().run(module, context)
    return context


def returned_constant(func):
    term = None
    for block in func.blocks:
        t = block.terminator
        if t is not None and t.opcode == "ret" and t.return_value is not None:
            term = t
    assert term is not None
    return term.return_value


class TestZeroPage:
    def test_unknown_offset_load_of_zero_object_folds(self, module):
        """The thread-states array deduction: a zero-initialized array
        whose writes all store zero reads as zero at ANY offset."""
        gv = module.add_global(GlobalVariable(
            "slots", ArrayType(I64, 16), addrspace=AddressSpace.SHARED))
        func, b = make_function(module, ret=I64, params=(I64,), arg_names=["i"])
        b.store(b.i64(0), b.ptradd(gv, 8))  # zero store: harmless
        addr = b.ptradd(gv, b.mul(func.args[0], b.i64(8)))
        v = b.load(I64, addr)
        b.ret(v)
        run_vp(module)
        rv = returned_constant(func)
        assert isinstance(rv, Constant) and rv.value == 0

    def test_nonzero_store_blocks_zero_page(self, module):
        gv = module.add_global(GlobalVariable(
            "slots", ArrayType(I64, 16), addrspace=AddressSpace.SHARED))
        func, b = make_function(module, ret=I64, params=(I64,))
        b.store(b.i64(5), b.ptradd(gv, 8))
        v = b.load(I64, b.ptradd(gv, b.mul(func.args[0], b.i64(8))))
        b.ret(v)
        run_vp(module)
        assert not isinstance(returned_constant(func), Constant)

    def test_initializer_blocks_zero_page(self, module):
        gv = module.add_global(GlobalVariable(
            "init", I64, addrspace=AddressSpace.SHARED,
            initializer=[Constant(I64, 9)]))
        func, b = make_function(module, ret=I64, params=(I64,))
        v = b.load(I64, gv)
        b.ret(v)
        run_vp(module)
        assert not isinstance(returned_constant(func), Constant)

    def test_atomic_blocks_zero_page(self, module):
        gv = module.add_global(GlobalVariable("ctr", I64, addrspace=AddressSpace.SHARED))
        func, b = make_function(module, ret=I64, params=(I64,))
        b.atomic_rmw("add", gv, b.i64(0))
        v = b.load(I64, gv)
        b.ret(v)
        run_vp(module)
        assert not isinstance(returned_constant(func), Constant)


class TestFlowSensitiveFacts:
    def test_unconditional_store_forwarded(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        b.store(b.i32(7), gv)
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        assert not any(
            i.opcode == "load" and i.type == I32 for i in func.instructions()
        )

    def test_store_of_ssa_value_forwarded(self, module):
        gv = module.add_global(GlobalVariable("x", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL, I64), arg_names=["out", "v"])
        b.store(func.args[1], gv)
        v = b.load(I64, gv)
        b.store(v, func.args[0])
        b.ret()
        run_vp(module)
        stores = [i for i in func.instructions() if i.opcode == "store"]
        # The store to out now uses the argument directly.
        assert stores[-1].value is func.args[1]

    def test_intervening_clobber_blocks_forwarding(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL, I32), arg_names=["out", "v"])
        b.store(b.i32(7), gv)
        b.store(func.args[1], gv)  # unknown value overwrites
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        context = run_vp(module)
        # load folds to the argument (ssa), which is correct forwarding —
        # but never to the constant 7.
        stores = [i for i in func.instructions() if i.opcode == "store"]
        assert all(
            not (isinstance(s.value, Constant) and s.value.value == 7)
            for s in stores
            if s.pointer is func.args[0]
        )

    def test_conditional_write_not_a_fact(self, module):
        """Fig. 7b: a select-pointer store alone cannot establish content."""
        state = module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.i32(9), b.select(cond, state, dummy))
        v = b.load(I32, state)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        assert any(i.opcode == "load" for i in func.instructions())

    def test_assume_after_conditional_write_establishes_fact(self, module):
        """Fig. 8b: the assumption after the broadcast barrier is what
        lets later loads fold (§IV-B3)."""
        state = module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.i32(9), b.select(cond, state, dummy))
        b.aligned_barrier()
        anchor = b.load(I32, state)
        b.assume(b.icmp("eq", anchor, b.i32(9)))
        v = b.load(I32, state)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        stores = [i for i in func.instructions()
                  if i.opcode == "store" and i.pointer is func.args[0]]
        from repro.ir.instructions import Cast

        val = stores[0].value
        assert isinstance(val, Constant) or (
            isinstance(val, Cast) and isinstance(val.source, Constant)
        )

    def test_assume_disabled_by_flag(self, module):
        state = module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.i32(9), b.select(cond, state, dummy))
        anchor = b.load(I32, state)
        b.assume(b.icmp("eq", anchor, b.i32(9)))
        v = b.load(I32, state)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module, enable_assumed_content=False)
        loads = [i for i in func.instructions() if i.opcode == "load"]
        assert len(loads) >= 2  # nothing folded

    def test_kernel_entry_shared_state_is_zero(self, module):
        """Shared memory is freshly zeroed per team at kernel entry."""
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.store(b.i32(5), gv)  # later write must not affect the first load
        b.ret()
        run_vp(module)
        stores = [i for i in func.instructions()
                  if i.opcode == "store" and i.pointer is func.args[0]]
        from repro.ir.instructions import Cast

        val = stores[0].value
        if isinstance(val, Cast):
            val = val.source
        assert isinstance(val, Constant) and val.value == 0

    def test_non_kernel_entry_state_unknown(self, module):
        """Device functions can be entered mid-kernel: no entry facts —
        the MiniFMM residual-overhead mechanism."""
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_function(module, "helper", ret=I32, params=())
        func.linkage = "internal"
        v = b.load(I32, gv)
        b.ret(v)
        # Keep helper alive via a kernel caller that also writes gv.
        kern, kb = make_kernel(module, params=(PTR_GLOBAL,))
        r = kb.call(func, [])
        kb.store(kb.sext(r, I64), kern.args[0])
        kb.store(kb.i32(3), gv)
        kb.ret()
        run_vp(module)
        assert any(i.opcode == "load" for i in func.instructions())

    def test_invariant_store_forwarded_as_intrinsic(self, module):
        """§IV-B4: values recomputable from grid geometry."""
        gv = module.add_global(GlobalVariable("ts", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        b.store(b.block_dim(), gv)
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        # No remaining i32 loads; a block_dim call feeds the store.
        assert not any(i.opcode == "load" for i in func.instructions())

    def test_invariant_prop_flag_off(self, module):
        gv = module.add_global(GlobalVariable("ts", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        # Conditional broadcast write kills the entry-zero fact; only the
        # invariant-valued assume could re-establish content.
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.block_dim(), b.select(cond, gv, dummy))
        b.aligned_barrier()
        anchor = b.load(I32, gv)
        b.assume(b.icmp("eq", anchor, b.block_dim()))
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module, enable_invariant_prop=False)
        loads = [i for i in func.instructions() if i.opcode == "load"]
        assert len(loads) >= 2

    def test_invariant_assume_folds_with_flag_on(self, module):
        gv = module.add_global(GlobalVariable("ts", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.block_dim(), b.select(cond, gv, dummy))
        b.aligned_barrier()
        anchor = b.load(I32, gv)
        b.assume(b.icmp("eq", anchor, b.block_dim()))
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        # The consumer load folds to a recomputed block_dim call; only
        # the assume's own anchor load may remain.
        loads = [i for i in func.instructions() if i.opcode == "load"]
        assert len(loads) == 1


class TestCallEffects:
    def test_call_to_writer_kills_facts(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        writer, wb = make_function(module, "writer", ret=I32, params=())
        writer.linkage = "internal"
        writer.attrs.add("noinline")
        wb.store(wb.i32(5), gv)
        wb.ret(wb.i32(0))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        b.store(b.i32(7), gv)
        b.call(writer, [])
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        assert any(i.opcode == "load" and i.type == I32 for i in func.instructions())

    def test_call_to_nonwriter_preserves_facts(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        idle, ib = make_function(module, "idle", ret=I32, params=())
        idle.linkage = "internal"
        idle.attrs.add("noinline")
        ib.ret(ib.i32(0))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        b.store(b.i32(7), gv)
        b.call(idle, [])
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        run_vp(module)
        assert not any(
            i.opcode == "load" and i.type == I32 for i in func.instructions()
        )


class TestDeadStateStoreElimination:
    def test_unread_state_stores_removed(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        b.store(b.i32(7), gv)
        b.store(b.i32(8), gv)
        b.ret()
        context = ctx()
        DeadStateStoreElimination().run(module, context)
        CleanupPass().run(module, context)
        assert not any(i.opcode == "store" for i in func.instructions())
        assert "x" not in module.globals  # the SMem -> 0 effect

    def test_read_state_stores_kept(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i32(7), gv)
        v = b.load(I32, gv, volatile=True)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        DeadStateStoreElimination().run(module, ctx())
        assert sum(1 for i in func.instructions() if i.opcode == "store") == 2

    def test_conditional_store_removed_when_all_targets_dead(self, module):
        state = module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.i32(9), b.select(cond, state, dummy))
        b.ret()
        context = ctx()
        DeadStateStoreElimination().run(module, context)
        CleanupPass().run(module, context)
        assert not any(i.opcode == "store" for i in func.instructions())
        assert not module.globals

    def test_conditional_store_kept_when_one_target_read(self, module):
        state = module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.store(b.i32(9), b.select(cond, state, dummy))
        v = b.load(I32, state, volatile=True)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        DeadStateStoreElimination().run(module, ctx())
        assert sum(1 for i in func.instructions() if i.opcode == "store") == 2

    def test_store_to_external_memory_never_removed(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.ret()
        DeadStateStoreElimination().run(module, ctx())
        assert any(i.opcode == "store" for i in func.instructions())

    def test_disabled_with_field_sensitive_off(self, module):
        gv = module.add_global(GlobalVariable("x", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        b.store(b.i32(7), gv)
        b.ret()
        DeadStateStoreElimination().run(module, ctx(enable_field_sensitive=False))
        assert any(i.opcode == "store" for i in func.instructions())
