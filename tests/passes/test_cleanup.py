"""Cleanup passes: instcombine, DCE, CFG simplification, dead globals."""

import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    Constant,
    GlobalVariable,
    I1,
    I32,
    I64,
    PTR,
    verify_module,
)
from repro.passes.cleanup import (
    CleanupPass,
    remove_dead_functions,
    remove_dead_globals,
    resolve_pointer_base,
    run_dce,
    run_instcombine,
    run_simplify_cfg,
)
from repro.passes.pass_manager import PassContext, PipelineConfig
from tests.conftest import make_function, make_kernel


def ctx():
    return PassContext(config=PipelineConfig())


class TestResolvePointerBase:
    def test_ptradd_chain(self, module):
        func, b = make_function(module, params=(PTR,))
        p = b.ptradd(b.ptradd(func.args[0], 8), 16)
        base, off = resolve_pointer_base(p)
        assert base is func.args[0] and off == 24

    def test_inttoptr_roundtrip(self, module):
        func, b = make_function(module, params=(PTR,))
        v = b.cast("ptrtoint", func.args[0], I64)
        p = b.cast("inttoptr", v, PTR)
        base, off = resolve_pointer_base(p)
        assert base is func.args[0] and off == 0

    def test_dynamic_offset_unresolved(self, module):
        func, b = make_function(module, params=(PTR, I64), arg_names=["p", "i"])
        p = b.ptradd(func.args[0], func.args[1])
        base, off = resolve_pointer_base(p)
        assert base is None and off is None


class TestInstCombine:
    def test_folds_through_dependent_chain(self, module):
        func, b = make_function(module)
        # (x * 0) + 5 -> 5 ; then icmp 5 == 5 -> true
        v = b.mul(func.args[0], 0)
        w = b.add(v, 5) if not isinstance(v, Constant) else b.i32(5)
        cmp = b.icmp("eq", w, b.i32(5))
        b.ret(b.zext(cmp, I32))
        run_instcombine(func)
        run_dce(func)
        assert sum(1 for _ in func.instructions()) <= 2  # zext+ret at most

    def test_constant_global_load_folds(self, module):
        gv = module.add_global(GlobalVariable(
            "flag", I32, addrspace=AddressSpace.CONSTANT,
            initializer=[Constant(I32, 1)], is_constant=True))
        func, b = make_function(module)
        v = b.load(I32, gv)
        b.ret(v)
        run_instcombine(func)
        run_dce(func)
        ret = func.entry.instructions[-1]
        assert isinstance(ret.return_value, Constant)
        assert ret.return_value.value == 1

    def test_mutable_global_load_not_folded(self, module):
        gv = module.add_global(GlobalVariable("state", I32))
        func, b = make_function(module)
        v = b.load(I32, gv)
        b.ret(v)
        run_instcombine(func)
        assert any(i.opcode == "load" for i in func.instructions())

    def test_ptradd_chain_combines(self, module):
        func, b = make_function(module, params=(PTR,))
        from repro.ir.instructions import PtrAdd, Load

        p1 = PtrAdd(func.args[0], Constant(I64, 8))
        b.block.append(p1)
        p2 = PtrAdd(p1, Constant(I64, 16))
        b.block.append(p2)
        ld = Load(I32, p2)
        b.block.append(ld)
        b.ret(ld)
        run_instcombine(func)
        loads = [i for i in func.instructions() if i.opcode == "load"]
        base, off = resolve_pointer_base(loads[0].pointer)
        assert off == 24

    def test_same_base_pointer_compare_folds(self, module):
        """The free_shared in-range check pattern."""
        gv = module.add_global(GlobalVariable("stack", I64, addrspace=AddressSpace.SHARED))
        func, b = make_function(module)
        lo = b.cast("ptrtoint", gv, I64)
        p = b.add(lo, b.i64(32))
        hi = b.add(lo, b.i64(128))
        in_lo = b.icmp("uge", p, lo)
        in_hi = b.icmp("ult", p, hi)
        both = b.and_(in_lo, in_hi)
        b.ret(b.zext(both, I32))
        run_instcombine(func)
        run_dce(func)
        ret = func.entry.instructions[-1]
        assert isinstance(ret.return_value, Constant)
        assert ret.return_value.value == 1


class TestDCE:
    def test_dead_pure_chain_removed(self, module):
        func, b = make_function(module)
        v = b.add(func.args[0], 1)
        b.mul(v, 2)  # dead
        b.ret(func.args[0])
        run_dce(func)
        assert sum(1 for _ in func.instructions()) == 1  # just ret

    def test_stores_never_removed_by_dce(self, module):
        func, b = make_function(module, params=(PTR,))
        b.store(b.function.args[0], func.args[0])
        b.ret(b.i32(0))
        run_dce(func)
        assert any(i.opcode == "store" for i in func.instructions())

    def test_assumes_survive_dce(self, module):
        func, b = make_function(module)
        b.assume(b.icmp("eq", func.args[0], b.i32(1)))
        b.ret(func.args[0])
        run_dce(func)
        from repro.ir.instructions import Call

        assert any(
            isinstance(i, Call) and i.callee.name == "llvm.assume"
            for i in func.instructions()
        )


class TestSimplifyCFG:
    def test_constant_branch_folds_and_removes_dead_block(self, module):
        func, b = make_function(module)
        then = func.add_block("then")
        els = func.add_block("els")
        b.cond_br(b.i1(True), then, els)
        b.set_insert_point(then)
        b.ret(b.i32(1))
        b.set_insert_point(els)
        b.ret(b.i32(2))
        run_simplify_cfg(func)
        assert len(func.blocks) == 1  # merged into entry
        verify_module(module)

    def test_phi_updated_when_edge_removed(self, module):
        func, b = make_function(module)
        then = func.add_block("then")
        merge = func.add_block("merge")
        b.cond_br(b.i1(True), then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        phi = b.phi(I32, "p")
        phi.add_incoming(b.i32(7), then)
        phi.add_incoming(b.i32(9), func.entry)
        b.ret(phi)
        run_simplify_cfg(func)
        run_instcombine(func)
        verify_module(module)
        ret = func.blocks[-1].instructions[-1]
        assert isinstance(ret.return_value, Constant)
        assert ret.return_value.value == 7

    def test_straightline_blocks_merge(self, module):
        func, b = make_function(module)
        b2 = func.add_block("b2")
        b3 = func.add_block("b3")
        b.br(b2)
        b.set_insert_point(b2)
        b.br(b3)
        b.set_insert_point(b3)
        b.ret(func.args[0])
        run_simplify_cfg(func)
        assert len(func.blocks) == 1

    def test_loops_preserved(self, module):
        func, b = make_function(module)
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        b.br(header)
        b.set_insert_point(header)
        iv = b.phi(I32, "iv")
        iv.add_incoming(b.i32(0), func.entry)
        b.cond_br(b.icmp("slt", iv, func.args[0]), body, exit_)
        b.set_insert_point(body)
        nxt = b.add(iv, 1)
        iv.add_incoming(nxt, body)
        b.br(header)
        b.set_insert_point(exit_)
        b.ret(iv)
        before = len(func.blocks)
        run_simplify_cfg(func)
        verify_module(module)
        assert any(len(blk.successors()) == 2 for blk in func.blocks)


class TestDeadGlobalsAndFunctions:
    def test_unreferenced_global_removed(self, module):
        module.add_global(GlobalVariable("dead", I32))
        func, b = make_kernel(module, params=())
        b.ret()
        remove_dead_globals(module)
        assert "dead" not in module.globals

    def test_referenced_global_kept(self, module):
        gv = module.add_global(GlobalVariable("live", I32))
        func, b = make_kernel(module, params=())
        b.load(I32, gv, volatile=True)
        b.ret()
        remove_dead_globals(module)
        assert "live" in module.globals

    def test_unreferenced_internal_function_removed(self, module):
        dead, db = make_function(module, "dead")
        dead.linkage = "internal"
        db.ret(dead.args[0])
        func, b = make_kernel(module, params=())
        b.ret()
        remove_dead_functions(module)
        assert "dead" not in module.functions

    def test_kernel_never_removed(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        remove_dead_functions(module)
        assert "kern" in module.functions

    def test_transitively_dead_chain_removed(self, module):
        inner, ib = make_function(module, "inner")
        inner.linkage = "internal"
        ib.ret(inner.args[0])
        outer, ob = make_function(module, "outer")
        outer.linkage = "internal"
        ob.ret(ob.call(inner, [outer.args[0]]))
        kern, kb = make_kernel(module, params=())
        kb.ret()
        cleanup = CleanupPass()
        cleanup.run(module, ctx())
        assert "inner" not in module.functions
        assert "outer" not in module.functions
