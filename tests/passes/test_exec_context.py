"""Guard/uniformity analysis (§IV-C)."""

from repro.ir import I32
from repro.passes.exec_context import (
    block_is_single_thread,
    block_is_thread_divergent,
    compute_block_guards,
    is_thread_dependent_guard,
)
from tests.conftest import make_function, make_kernel


class TestGuards:
    def test_entry_is_unguarded(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        guards = compute_block_guards(func)
        assert guards[func.entry] == frozenset()

    def test_then_branch_guarded(self, module):
        func, b = make_kernel(module, params=(I32,))
        then = func.add_block("then")
        merge = func.add_block("merge")
        cond = b.icmp("eq", func.args[0], b.i32(0))
        b.cond_br(cond, then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        guards = compute_block_guards(func)
        assert (cond, True) in guards[then]
        assert guards[merge] == frozenset()  # reachable both ways

    def test_nested_guards_accumulate(self, module):
        func, b = make_kernel(module, params=(I32, I32), arg_names=["a", "b"])
        lvl1 = func.add_block("lvl1")
        lvl2 = func.add_block("lvl2")
        out = func.add_block("out")
        c1 = b.icmp("eq", func.args[0], b.i32(0))
        b.cond_br(c1, lvl1, out)
        b.set_insert_point(lvl1)
        c2 = b.icmp("eq", func.args[1], b.i32(0))
        b.cond_br(c2, lvl2, out)
        b.set_insert_point(lvl2)
        b.br(out)
        b.set_insert_point(out)
        b.ret()
        guards = compute_block_guards(func)
        assert guards[lvl2] == frozenset({(c1, True), (c2, True)})

    def test_false_edge_polarity(self, module):
        func, b = make_kernel(module, params=(I32,))
        then = func.add_block("then")
        els = func.add_block("els")
        cond = b.icmp("eq", func.args[0], b.i32(0))
        b.cond_br(cond, then, els)
        b.set_insert_point(then)
        b.ret()
        b.set_insert_point(els)
        b.ret()
        guards = compute_block_guards(func)
        assert (cond, False) in guards[els]


class TestThreadDependence:
    def test_tid_guard_is_thread_dependent(self, module):
        func, b = make_kernel(module, params=())
        then = func.add_block("then")
        merge = func.add_block("merge")
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        b.cond_br(cond, then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        guards = compute_block_guards(func)
        assert block_is_thread_divergent(then, guards)
        assert block_is_single_thread(then, guards)
        assert not block_is_thread_divergent(func.entry, guards)

    def test_uniform_guard_is_not_divergent(self, module):
        func, b = make_kernel(module, params=(I32,))
        then = func.add_block("then")
        merge = func.add_block("merge")
        cond = b.icmp("eq", func.args[0], b.i32(0))  # uniform kernel arg
        b.cond_br(cond, then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        guards = compute_block_guards(func)
        assert not block_is_thread_divergent(then, guards)
        assert not block_is_single_thread(then, guards)

    def test_block_dim_guard_is_uniform(self, module):
        func, b = make_kernel(module, params=())
        then = func.add_block("then")
        merge = func.add_block("merge")
        cond = b.icmp("sgt", b.block_dim(), b.i32(16))
        b.cond_br(cond, then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        guards = compute_block_guards(func)
        assert not block_is_thread_divergent(then, guards)

    def test_main_thread_guard_recognized(self, module):
        """tid == bdim - 1 (the generic-mode main thread)."""
        func, b = make_kernel(module, params=())
        then = func.add_block("then")
        merge = func.add_block("merge")
        main_id = b.sub(b.block_dim(), b.i32(1))
        cond = b.icmp("eq", b.thread_id(), main_id)
        b.cond_br(cond, then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        guards = compute_block_guards(func)
        assert block_is_single_thread(then, guards)

    def test_derived_tid_expression_divergent(self, module):
        func, b = make_kernel(module, params=())
        then = func.add_block("then")
        merge = func.add_block("merge")
        lane = b.srem(b.thread_id(), b.i32(32))
        cond = b.icmp("eq", lane, b.i32(0))
        b.cond_br(cond, then, merge)
        b.set_insert_point(then)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        guards = compute_block_guards(func)
        assert block_is_thread_divergent(then, guards)
        # But not *provably* single-threaded (lane 0 of each warp runs).
        assert not block_is_single_thread(then, guards)
