"""Scalar constant folding vs Python reference semantics (property tests)."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.ir import Constant, F64, I1, I32, I64
from repro.passes.folding import fold_binop, fold_cast, fold_fcmp, fold_icmp

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
f64s = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestIntFolding:
    @given(i32s, i32s)
    def test_add_matches_wrapping(self, a, b):
        out = fold_binop("add", Constant(I32, a), Constant(I32, b))
        assert out.value == (a + b) % (1 << 32)

    @given(i32s, i32s)
    def test_sdiv_truncates_toward_zero(self, a, b):
        assume(b != 0)
        out = fold_binop("sdiv", Constant(I32, a), Constant(I32, b))
        assert out.signed() == int(a / b)

    @given(i32s, i32s)
    def test_srem_sign_matches_c(self, a, b):
        assume(b != 0)
        out = fold_binop("srem", Constant(I32, a), Constant(I32, b))
        assert out.signed() == a - int(a / b) * b

    def test_division_by_zero_not_folded(self):
        assert fold_binop("sdiv", Constant(I32, 1), Constant(I32, 0)) is None
        assert fold_binop("udiv", Constant(I32, 1), Constant(I32, 0)) is None

    @given(i32s, st.integers(min_value=0, max_value=63))
    def test_shl_masks_shift_amount(self, a, s):
        out = fold_binop("shl", Constant(I32, a), Constant(I32, s))
        assert out.value == (Constant(I32, a).value << (s % 32)) % (1 << 32)

    @given(i32s)
    def test_ashr_preserves_sign(self, a):
        out = fold_binop("ashr", Constant(I32, a), Constant(I32, 1))
        assert out.signed() == a >> 1

    @given(i32s, i32s)
    def test_bitwise(self, a, b):
        ca, cb = Constant(I32, a), Constant(I32, b)
        assert fold_binop("and", ca, cb).value == ca.value & cb.value
        assert fold_binop("or", ca, cb).value == ca.value | cb.value
        assert fold_binop("xor", ca, cb).value == ca.value ^ cb.value


class TestFloatFolding:
    @given(f64s, f64s)
    def test_fadd(self, a, b):
        out = fold_binop("fadd", Constant(F64, a), Constant(F64, b))
        assert out.value == a + b or (math.isnan(out.value) and math.isnan(a + b))

    @given(f64s)
    def test_fdiv_by_zero_not_folded(self, a):
        assert fold_binop("fdiv", Constant(F64, a), Constant(F64, 0.0)) is None


class TestCmpFolding:
    @given(i32s, i32s)
    def test_signed_predicates(self, a, b):
        ca, cb = Constant(I32, a), Constant(I32, b)
        assert fold_icmp("slt", ca, cb).value == (1 if a < b else 0)
        assert fold_icmp("sge", ca, cb).value == (1 if a >= b else 0)
        assert fold_icmp("eq", ca, cb).value == (1 if a == b else 0)

    @given(i32s, i32s)
    def test_unsigned_predicates(self, a, b):
        ca, cb = Constant(I32, a), Constant(I32, b)
        ua, ub = ca.value, cb.value
        assert fold_icmp("ult", ca, cb).value == (1 if ua < ub else 0)
        assert fold_icmp("uge", ca, cb).value == (1 if ua >= ub else 0)

    @given(f64s, f64s)
    def test_ordered_float_predicates(self, a, b):
        ca, cb = Constant(F64, a), Constant(F64, b)
        assert fold_fcmp("olt", ca, cb).value == (1 if a < b else 0)

    def test_nan_ordered_is_false(self):
        nan = Constant(F64, float("nan"))
        one = Constant(F64, 1.0)
        assert fold_fcmp("oeq", nan, one).value == 0
        assert fold_fcmp("olt", nan, one).value == 0


class TestCastFolding:
    @given(st.integers(min_value=-128, max_value=127))
    def test_sext_i8_to_i64(self, v):
        from repro.ir.types import I8

        out = fold_cast("sext", Constant(I8, v), I64)
        assert out.signed() == v

    @given(st.integers(min_value=0, max_value=255))
    def test_zext_i8_to_i64(self, v):
        from repro.ir.types import I8

        out = fold_cast("zext", Constant(I8, v), I64)
        assert out.value == v

    @given(i32s)
    def test_sitofp_fptosi_roundtrip(self, v):
        f = fold_cast("sitofp", Constant(I32, v), F64)
        back = fold_cast("fptosi", f, I32)
        assert back.signed() == v

    @given(st.integers())
    def test_trunc(self, v):
        out = fold_cast("trunc", Constant(I64, v), I32)
        assert out.value == Constant(I64, v).value % (1 << 32)
