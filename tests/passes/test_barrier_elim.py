"""Aligned barrier elimination (§IV-D)."""

import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import GlobalVariable, I32, I64, PTR_GLOBAL
from repro.passes.barrier_elim import BarrierEliminationPass
from repro.passes.pass_manager import PassContext, PipelineConfig
from tests.conftest import make_function, make_kernel


def run(module, **kw):
    ctx = PassContext(config=PipelineConfig(**kw))
    BarrierEliminationPass().run(module, ctx)
    return ctx


def count_barriers(func, aligned_only=False):
    from repro.passes.barrier_elim import _is_aligned_barrier, _is_any_barrier

    pred = _is_aligned_barrier if aligned_only else _is_any_barrier
    return sum(1 for i in func.instructions() if pred(i))


class TestConsecutiveBarriers:
    def test_back_to_back_aligned_dedup(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])  # keeps entry barrier "real"
        b.aligned_barrier()
        b.aligned_barrier()
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module)
        assert count_barriers(func) == 1

    def test_thread_local_effects_between_are_fine(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        slot = b.alloca(I64)
        b.store(b.i64(3), slot)  # thread-private
        b.load(I64, slot)
        b.aligned_barrier()
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module)
        assert count_barriers(func) == 1

    def test_team_visible_store_blocks_elimination(self, module):
        gv = module.add_global(GlobalVariable("s", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        b.store(b.i32(1), gv)  # team-visible
        b.aligned_barrier()
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module)
        assert count_barriers(func) == 2

    def test_unaligned_barriers_never_removed(self, module):
        func, b = make_kernel(module, params=())
        b.barrier()
        b.barrier()
        b.ret()
        run(module)
        assert count_barriers(func) == 2

    def test_unaligned_between_blocks_reasoning(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        b.barrier()  # generic barrier separates the aligned pair
        b.aligned_barrier()
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module)
        assert count_barriers(func, aligned_only=True) == 2


class TestImplicitKernelBarriers:
    def test_barrier_at_kernel_entry_removed(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.aligned_barrier()
        b.store(b.i64(1), func.args[0])
        b.ret()
        run(module)
        assert count_barriers(func) == 0

    def test_barrier_at_kernel_exit_removed(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        b.ret()
        run(module)
        assert count_barriers(func) == 0

    def test_non_kernel_functions_have_no_implicit_barriers(self, module):
        func, b = make_function(module, ret=I32, params=(I32,))
        b.aligned_barrier()
        b.ret(func.args[0])
        run(module)
        assert count_barriers(func) == 1

    def test_barrier_with_preceding_effect_kept_at_entry(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module)
        assert count_barriers(func) == 1


class TestAlignedExecInteraction:
    def test_alloca_stores_block_when_ivc_disabled(self, module):
        """Without §IV-C, private stores cannot be classified thread-local."""
        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.aligned_barrier()
        slot = b.alloca(I64)
        b.store(b.i64(3), slot)
        b.aligned_barrier()
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module, enable_aligned_exec=False)
        assert count_barriers(func) == 2

    def test_disabled_entirely_by_flag(self, module):
        func, b = make_kernel(module, params=())
        b.aligned_barrier()
        b.aligned_barrier()
        b.ret()
        run(module, enable_barrier_elim=False)
        assert count_barriers(func) == 2


class TestAnnotatedBarrierFunctions:
    def test_function_with_aligned_assumption_eliminable(self, module):
        """Fig. 6: ext_aligned_barrier-annotated wrappers count as
        aligned barriers even before inlining."""
        from repro.ir import Function, FunctionType, VOID

        wrapper = module.add_function(Function("syncThreadsAligned", FunctionType(VOID, ())))
        wrapper.assumptions.add("ext_aligned_barrier")
        wrapper.assumptions.add("ext_no_call_asm")
        from repro.ir import IRBuilder

        wb = IRBuilder(module, wrapper.add_block("entry"))
        wb.aligned_barrier()
        wb.ret()

        func, b = make_kernel(module, params=(PTR_GLOBAL,))
        b.store(b.i64(1), func.args[0])
        b.call(wrapper, [])
        b.call(wrapper, [])
        b.store(b.i64(2), func.args[0])
        b.ret()
        run(module)
        from repro.ir.instructions import Call

        calls = [i for i in func.instructions()
                 if isinstance(i, Call) and i.callee is wrapper]
        assert len(calls) == 1
