"""Pass-ordering fuzz: any subset/order of passes must preserve both
structural validity (verifier) and observable behaviour (execution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import verify_module
from repro.passes.barrier_elim import BarrierEliminationPass
from repro.passes.cleanup import CleanupPass
from repro.passes.globalization import GlobalizationEliminationPass
from repro.passes.gvn import GVNPass, LICMPass
from repro.passes.inline import InlinePass
from repro.passes.internalize import InternalizePass
from repro.passes.mem2reg import PromoteAllocasPass
from repro.passes.pass_manager import PassContext, PassManager, PipelineConfig
from repro.passes.spmdization import SPMDizationPass
from repro.passes.strip_assumes import StripAssumesPass
from repro.passes.value_prop import DeadStateStoreElimination, ValuePropagationPass
from repro.runtime.interface import NEW_RUNTIME
from tests.runtime.conftest import (
    add_saxpy_body,
    add_spmd_kernel,
    build_runtime_module,
    run_saxpy,
)

PASS_FACTORIES = [
    InternalizePass,
    CleanupPass,
    SPMDizationPass,
    GlobalizationEliminationPass,
    InlinePass,
    PromoteAllocasPass,
    GVNPass,
    LICMPass,
    ValuePropagationPass,
    DeadStateStoreElimination,
    BarrierEliminationPass,
    StripAssumesPass,
]


class TestPassOrderFuzz:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, len(PASS_FACTORIES) - 1),
                    min_size=1, max_size=10))
    def test_random_pass_sequences_preserve_semantics(self, indices):
        module = build_runtime_module(NEW_RUNTIME)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, NEW_RUNTIME, body)

        ctx = PassContext(config=PipelineConfig(verify_each=True))
        passes = [PASS_FACTORIES[i]() for i in indices]
        PassManager(passes, ctx).run(module)
        verify_module(module)

        # Assumes may still be present; run without debug checking.
        _, out, expected = run_saxpy(module, n=100, teams=2, threads=8,
                                     debug_checks=False)
        assert np.allclose(out, expected), [p.name for p in passes]

    @settings(max_examples=8, deadline=None)
    @given(st.permutations(list(range(len(PASS_FACTORIES)))))
    def test_full_permutations(self, order):
        module = build_runtime_module(NEW_RUNTIME)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, NEW_RUNTIME, body)
        ctx = PassContext(config=PipelineConfig(verify_each=True))
        PassManager([PASS_FACTORIES[i]() for i in order], ctx).run(module)
        _, out, expected = run_saxpy(module, n=64, teams=1, threads=8,
                                     debug_checks=False)
        assert np.allclose(out, expected)

    def test_pipeline_is_idempotent(self):
        """Running the full pipeline twice changes nothing further."""
        from repro.ir import print_module
        from repro.passes import run_openmp_opt_pipeline

        module = build_runtime_module(NEW_RUNTIME)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, NEW_RUNTIME, body)
        run_openmp_opt_pipeline(module, PipelineConfig())
        first = print_module(module)
        run_openmp_opt_pipeline(module, PipelineConfig())
        assert print_module(module) == first
