"""Field-sensitive access analysis (§IV-B1): object discovery & binning."""

import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    ArrayType,
    GlobalVariable,
    I32,
    I64,
    PTR,
    VOID,
    FunctionType,
)
from repro.passes.memobjects import AccessKind, discover_objects
from tests.conftest import make_function, make_kernel


def find(objects, name):
    for obj in objects:
        if obj.name == name:
            return obj
    raise KeyError(name)


class TestDiscovery:
    def test_internal_global_discovered(self, module):
        module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        objects = discover_objects(module)
        obj = find(objects, "@state")
        assert obj.zero_initialized
        assert obj.size == 4

    def test_external_global_not_discovered(self, module):
        module.add_global(GlobalVariable("env", I32, linkage="external"))
        assert all(o.name != "@env" for o in discover_objects(module))

    def test_alloca_discovered(self, module):
        func, b = make_function(module)
        slot = b.alloca(I64)
        b.ret(func.args[0])
        objects = discover_objects(module)
        assert any(o.base is slot for o in objects)

    def test_alloc_shared_call_discovered(self, module):
        alloc = module.declare("__kmpc_alloc_shared", FunctionType(PTR, (I64,)))
        func, b = make_kernel(module, params=())
        call = b.call(alloc, [b.i64(48)])
        b.ret()
        objects = discover_objects(module)
        obj = next(o for o in objects if o.base is call)
        assert obj.size == 48


class TestAccessBinning:
    def test_exact_offsets(self, module):
        gv = module.add_global(GlobalVariable(
            "s", ArrayType(I32, 8), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        b.store(b.i32(1), b.ptradd(gv, 4))
        b.load(I32, b.ptradd(gv, 8), volatile=False)
        b.ret()
        obj = find(discover_objects(module), "@s")
        writes = obj.writes()
        loads = obj.loads()
        assert writes[0].offset == 4 and writes[0].size == 4
        assert loads[0].offset == 8
        assert not writes[0].conditional

    def test_disjoint_bins_do_not_interfere(self, module):
        gv = module.add_global(GlobalVariable(
            "s", ArrayType(I32, 8), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        b.store(b.i32(1), b.ptradd(gv, 0))
        b.ret()
        obj = find(discover_objects(module), "@s")
        assert obj.interfering_writes(8, 4) == []
        assert len(obj.interfering_writes(0, 4)) == 1
        # Overlapping through size:
        assert len(obj.interfering_writes(2, 4)) == 1

    def test_unknown_offset_binned_separately(self, module):
        gv = module.add_global(GlobalVariable(
            "arr", ArrayType(I64, 8), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(I64,))
        addr = b.ptradd(gv, b.mul(func.args[0], b.i64(8)))
        b.load(I64, addr, volatile=False)
        b.ret()
        obj = find(discover_objects(module), "@arr")
        assert obj.loads()[0].offset is None
        assert obj.loads()[0].may_overlap(0, 8)

    def test_select_pointer_marks_conditional(self, module):
        """The Fig. 7b conditional-pointer write."""
        state = module.add_global(GlobalVariable("state", I32, addrspace=AddressSpace.SHARED))
        dummy = module.add_global(GlobalVariable("dummy", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        target = b.select(cond, state, dummy)
        b.store(b.i32(7), target)
        b.ret()
        objects = discover_objects(module)
        assert find(objects, "@state").writes()[0].conditional
        assert find(objects, "@dummy").writes()[0].conditional

    def test_memcpy_src_is_read_dst_is_write(self, module):
        src = module.add_global(GlobalVariable("src", ArrayType(I64, 4), addrspace=AddressSpace.SHARED))
        dst = module.add_global(GlobalVariable("dst", ArrayType(I64, 4), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        b.intrinsic("llvm.memcpy", [
            b.cast("bitcast", dst, PTR), b.cast("bitcast", src, PTR), b.i64(32)])
        b.ret()
        objects = discover_objects(module)
        assert find(objects, "@src").loads()[0].kind is AccessKind.LOAD
        assert find(objects, "@dst").writes()[0].kind is AccessKind.MEM_INTRINSIC


class TestEscape:
    def test_address_stored_to_memory_escapes(self, module):
        gv = module.add_global(GlobalVariable("g", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR,))
        addr = b.cast("ptrtoint", gv, I64)
        b.store(addr, func.args[0])
        b.ret()
        obj = find(discover_objects(module), "@g")
        assert obj.escaped

    def test_address_passed_to_unknown_call_escapes(self, module):
        gv = module.add_global(GlobalVariable("g", I64, addrspace=AddressSpace.SHARED))
        sink = module.declare("sink", FunctionType(VOID, (PTR,)))
        func, b = make_kernel(module, params=())
        b.call(sink, [b.cast("bitcast", gv, PTR)])
        b.ret()
        obj = find(discover_objects(module), "@g")
        assert obj.escaped
        assert "sink" in obj.escape_reason

    def test_icmp_on_address_does_not_escape(self, module):
        gv = module.add_global(GlobalVariable("g", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR,))
        a = b.cast("ptrtoint", gv, I64)
        p = b.cast("ptrtoint", func.args[0], I64)
        b.icmp("ult", p, a)
        b.ret()
        obj = find(discover_objects(module), "@g")
        assert obj.analyzable

    def test_free_call_does_not_escape(self, module):
        gv = module.add_global(GlobalVariable("g", I64, addrspace=AddressSpace.SHARED))
        free = module.declare("__kmpc_free_shared", FunctionType(VOID, (PTR, I64)))
        func, b = make_kernel(module, params=())
        b.call(free, [b.cast("bitcast", gv, PTR), b.i64(8)])
        b.ret()
        assert find(discover_objects(module), "@g").analyzable

    def test_assume_use_does_not_escape(self, module):
        gv = module.add_global(GlobalVariable("g", I32, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=())
        v = b.load(I32, gv)
        b.assume(b.icmp("eq", v, b.i32(0)))
        b.ret()
        assert find(discover_objects(module), "@g").analyzable
