"""Near-zero-overhead guard: with tracing disabled, the simulator must
execute the exact pre-tracing hot loops — no traced variants, no
per-instruction attribution, no phase logging."""

from __future__ import annotations

import time

import pytest

from repro.bench.builds import BUILD_ORDER, build_options
from repro.bench.harness import APPS
from repro.trace import NULL_COLLECTOR, TraceCollector
from repro.trace.collector import get_collector, install, reset
from repro.vgpu import GPUConfig, VirtualGPU
from repro.vgpu import decode as decode_mod
from repro.vgpu import interpreter as interp_mod

SIZE = {"n_atoms": 64, "n_neighbors": 4}


def _launch(engine, trace=None):
    app = APPS["testsnap"]
    options = build_options()[BUILD_ORDER[0]]
    from repro.toolchain.service import ToolchainSession

    compiled = ToolchainSession().compile(app.build_program(SIZE), options)
    gpu = VirtualGPU(compiled.module, config=GPUConfig(), engine=engine,
                     trace=trace)
    host_args, _ = app.prepare(gpu, SIZE)
    args = compiled.abi(app.KERNEL).marshal(gpu, host_args)
    profile = gpu.launch(app.KERNEL, args, app.TEAMS, app.THREADS)
    return gpu, profile


class TestDisabledPath:
    def test_disabled_collector_is_the_shared_noop_singleton(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            assert get_collector() is NULL_COLLECTOR
        finally:
            reset()

    def test_gpu_trace_is_none_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            gpu, _ = _launch("decoded")
            assert gpu._trace is None
        finally:
            reset()

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_traced_loops_never_run_when_disabled(self, engine, monkeypatch):
        def boom(*a, **k):  # pragma: no cover - must not execute
            raise AssertionError("traced loop entered with tracing disabled")

        monkeypatch.setattr(decode_mod, "_run_thread_traced", boom)
        monkeypatch.setattr(interp_mod.VirtualGPU, "_run_thread_traced", boom)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            _, profile = _launch(engine)
        finally:
            reset()
        # ...and the trace-only fields stay untouched.
        assert profile.function_cycles == {}

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_traced_loops_do_run_when_enabled(self, engine):
        collector = TraceCollector()
        with install(collector):
            _, profile = _launch(engine, trace=collector)
        assert profile.function_cycles
        assert any(e.get("ph") == "C" and e["name"] == "runtime_overhead"
                   for e in collector.events_snapshot())


class TestBenchMachineryStaysOffHotPath:
    """The perf-history store and microbenchmark suite must cost a
    plain launch nothing: no imports, no history I/O, no extra Python
    per instruction."""

    def test_plain_launch_never_imports_bench_observability(self, monkeypatch):
        import subprocess
        import sys

        code = (
            "import sys\n"
            "from repro.bench.harness import APPS\n"
            "from repro.bench.builds import BUILD_ORDER, build_options\n"
            "from repro.toolchain.service import ToolchainSession\n"
            "from repro.vgpu import GPUConfig, VirtualGPU\n"
            "app = APPS['testsnap']\n"
            "size = {'n_atoms': 64, 'n_neighbors': 4}\n"
            "compiled = ToolchainSession().compile(\n"
            "    app.build_program(size), build_options()[BUILD_ORDER[0]])\n"
            "gpu = VirtualGPU(compiled.module, config=GPUConfig())\n"
            "host_args, _ = app.prepare(gpu, size)\n"
            "args = compiled.abi(app.KERNEL).marshal(gpu, host_args)\n"
            "gpu.launch(app.KERNEL, args, app.TEAMS, app.THREADS)\n"
            "bad = [m for m in ('repro.bench.history', 'repro.bench.micro',\n"
            "                   'repro.bench.record') if m in sys.modules]\n"
            "assert not bad, bad\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr

    def test_plain_launch_touches_no_history_store(self, tmp_path, monkeypatch):
        from repro.bench import history

        store = tmp_path / "hist"
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(store))

        def boom(*a, **k):  # pragma: no cover - must not execute
            raise AssertionError("history store touched by a plain launch")

        monkeypatch.setattr(history, "append_record", boom)
        monkeypatch.setattr(history, "load_records", boom)
        _launch("decoded")
        assert not store.exists()

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_profile_summary_reads_only_existing_counters(self, engine,
                                                          monkeypatch):
        """``profile_summary`` is pure post-hoc aggregation: asking for
        it after an untraced launch must not re-enter any traced loop
        or populate trace-only fields."""
        def boom(*a, **k):  # pragma: no cover - must not execute
            raise AssertionError("traced loop entered for profile_summary")

        monkeypatch.setattr(decode_mod, "_run_thread_traced", boom)
        monkeypatch.setattr(interp_mod.VirtualGPU, "_run_thread_traced", boom)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            gpu, profile = _launch(engine)
        finally:
            reset()
        from repro.trace.snapshot import profile_summary

        summary = profile_summary(profile)
        assert profile.function_cycles == {}
        assert summary["barriers"]["total"] >= 0
        # Consistent with the fast-path counters the launch did keep.
        assert sum(summary["runtime_calls"].values()) == sum(
            profile.runtime_calls.values()
        )


@pytest.mark.simperf
def test_disabled_tracing_throughput_guard():
    """Generous wall-clock smoke: a disabled-trace launch must not be
    dramatically slower than a second disabled-trace launch, and an
    enabled-trace launch must not be more than ~an order of magnitude
    slower (it does strictly more bookkeeping).  The strict <2%
    regression bound is tracked by ``python -m repro.bench simperf``
    against ``BENCH_sim.json``; this test only catches the failure mode
    where the disabled path accidentally routes through the traced
    loop *and* the traced loop grows pathological."""
    reset()
    try:
        def timed(trace):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                _launch("decoded", trace=trace)
                best = min(best, time.perf_counter() - t0)
            return best

        with install(NULL_COLLECTOR):
            disabled = timed(None)
        collector = TraceCollector()
        with install(collector):
            enabled = timed(collector)
        assert disabled < enabled * 10, (disabled, enabled)
    finally:
        reset()
