"""Near-zero-overhead guard: with tracing disabled, the simulator must
execute the exact pre-tracing hot loops — no traced variants, no
per-instruction attribution, no phase logging."""

from __future__ import annotations

import time

import pytest

from repro.bench.builds import BUILD_ORDER, build_options
from repro.bench.harness import APPS
from repro.trace import NULL_COLLECTOR, TraceCollector
from repro.trace.collector import get_collector, install, reset
from repro.vgpu import GPUConfig, VirtualGPU
from repro.vgpu import decode as decode_mod
from repro.vgpu import interpreter as interp_mod

SIZE = {"n_atoms": 64, "n_neighbors": 4}


def _launch(engine, trace=None):
    app = APPS["testsnap"]
    options = build_options()[BUILD_ORDER[0]]
    from repro.toolchain.service import ToolchainSession

    compiled = ToolchainSession().compile(app.build_program(SIZE), options)
    gpu = VirtualGPU(compiled.module, config=GPUConfig(), engine=engine,
                     trace=trace)
    host_args, _ = app.prepare(gpu, SIZE)
    args = compiled.abi(app.KERNEL).marshal(gpu, host_args)
    profile = gpu.launch(app.KERNEL, args, app.TEAMS, app.THREADS)
    return gpu, profile


class TestDisabledPath:
    def test_disabled_collector_is_the_shared_noop_singleton(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            assert get_collector() is NULL_COLLECTOR
        finally:
            reset()

    def test_gpu_trace_is_none_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            gpu, _ = _launch("decoded")
            assert gpu._trace is None
        finally:
            reset()

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_traced_loops_never_run_when_disabled(self, engine, monkeypatch):
        def boom(*a, **k):  # pragma: no cover - must not execute
            raise AssertionError("traced loop entered with tracing disabled")

        monkeypatch.setattr(decode_mod, "_run_thread_traced", boom)
        monkeypatch.setattr(interp_mod.VirtualGPU, "_run_thread_traced", boom)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            _, profile = _launch(engine)
        finally:
            reset()
        # ...and the trace-only fields stay untouched.
        assert profile.function_cycles == {}

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_traced_loops_do_run_when_enabled(self, engine):
        collector = TraceCollector()
        with install(collector):
            _, profile = _launch(engine, trace=collector)
        assert profile.function_cycles
        assert any(e.get("ph") == "C" and e["name"] == "runtime_overhead"
                   for e in collector.events_snapshot())


@pytest.mark.simperf
def test_disabled_tracing_throughput_guard():
    """Generous wall-clock smoke: a disabled-trace launch must not be
    dramatically slower than a second disabled-trace launch, and an
    enabled-trace launch must not be more than ~an order of magnitude
    slower (it does strictly more bookkeeping).  The strict <2%
    regression bound is tracked by ``python -m repro.bench simperf``
    against ``BENCH_sim.json``; this test only catches the failure mode
    where the disabled path accidentally routes through the traced
    loop *and* the traced loop grows pathological."""
    reset()
    try:
        def timed(trace):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                _launch("decoded", trace=trace)
                best = min(best, time.perf_counter() - t0)
            return best

        with install(NULL_COLLECTOR):
            disabled = timed(None)
        collector = TraceCollector()
        with install(collector):
            enabled = timed(collector)
        assert disabled < enabled * 10, (disabled, enabled)
    finally:
        reset()
