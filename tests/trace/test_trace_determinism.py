"""Trace determinism: serial vs. parallel team simulation must emit
identical device event lists and counter totals, and the two execution
engines must agree on every trace-visible counter.

Device events are assembled post-merge from per-team phase logs (in
team order), never from worker threads — these tests pin that design.
"""

from __future__ import annotations

import copy

import pytest

from repro.bench.builds import BUILD_ORDER, build_options
from repro.bench.harness import APPS
from repro.frontend.driver import CompileOptions
from repro.passes.pass_manager import PipelineConfig
from repro.trace import PID_DEVICE, TraceCollector
from repro.trace.collector import install

SIZE = {"n_atoms": 64, "n_neighbors": 4}
GEOMETRY = dict(num_teams=4, threads_per_team=32)

#: Build cells: an optimized build (runtime inlined away, counters near
#: zero) and an -O0 build (raw runtime call traffic, §III categories).
CELLS = {
    "optimized": lambda: build_options()[BUILD_ORDER[0]],
    "o0": lambda: CompileOptions(pipeline=PipelineConfig.o0()),
}


def _traced_run(options, engine, sim_jobs):
    collector = TraceCollector()
    with install(collector):
        result = APPS["testsnap"].run(
            options, size=SIZE, engine=engine, sim_jobs=sim_jobs, **GEOMETRY
        )
    assert result.verified
    return result.profile, collector


def _device_events(collector):
    return [e for e in collector.events_snapshot() if e.get("pid") == PID_DEVICE]


def _without_engine_label(events):
    out = copy.deepcopy(events)
    for e in out:
        if isinstance(e.get("args"), dict):
            e["args"].pop("engine", None)
    return out


@pytest.mark.parametrize("cell", sorted(CELLS))
@pytest.mark.parametrize("engine", ["legacy", "decoded"])
def test_serial_vs_parallel_identical(cell, engine):
    options = CELLS[cell]()
    serial_profile, serial = _traced_run(options, engine, sim_jobs=None)
    parallel_profile, parallel = _traced_run(options, engine, sim_jobs=2)

    assert serial_profile.overhead_counters() == parallel_profile.overhead_counters()
    assert serial_profile.function_cycles == parallel_profile.function_cycles
    # The device timeline must be *identical* — same events, same
    # order, same timestamps — regardless of worker count.
    assert _device_events(serial) == _device_events(parallel)


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_legacy_vs_decoded_trace_equal(cell):
    options = CELLS[cell]()
    legacy_profile, legacy = _traced_run(options, "legacy", sim_jobs=None)
    decoded_profile, decoded = _traced_run(options, "decoded", sim_jobs=None)

    assert legacy_profile.runtime_calls == decoded_profile.runtime_calls
    assert legacy_profile.barriers_aligned == decoded_profile.barriers_aligned
    assert legacy_profile.barriers_unaligned == decoded_profile.barriers_unaligned
    assert legacy_profile.device_mallocs == decoded_profile.device_mallocs
    assert legacy_profile.device_frees == decoded_profile.device_frees
    assert legacy_profile.function_cycles == decoded_profile.function_cycles
    assert legacy_profile.overhead_counters() == decoded_profile.overhead_counters()
    # Device timelines agree up to the engine label on the kernel span.
    assert _without_engine_label(_device_events(legacy)) == \
        _without_engine_label(_device_events(decoded))


def test_o0_build_shows_raw_runtime_traffic():
    """The measured face of the paper's claim: without openmp-opt the
    runtime call categories are hot; the optimized build zeroes them."""
    o0_profile, _ = _traced_run(CELLS["o0"](), "decoded", sim_jobs=None)
    opt_profile, _ = _traced_run(CELLS["optimized"](), "decoded", sim_jobs=None)

    assert o0_profile.runtime_calls["target_init"] > 0
    assert o0_profile.runtime_calls["parallel_region"] > 0
    assert o0_profile.runtime_calls["worksharing"] > 0
    assert sum(opt_profile.runtime_calls.values()) < \
        sum(o0_profile.runtime_calls.values())
