"""Chrome Trace Format export and schema validation."""

from __future__ import annotations

import json

from repro.trace import (
    TraceCollector,
    TraceConfig,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


def _valid_doc():
    c = TraceCollector(TraceConfig(labels={"app": "t"}))
    with c.span("s", cat="bench"):
        pass
    c.instant("i", cat="toolchain")
    c.counter("c", {"k": 1}, cat="runtime")
    return chrome_trace(c, other_data={"extra": True})


class TestChromeTrace:
    def test_document_shape(self):
        doc = _valid_doc()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["generator"] == "repro.trace"
        assert doc["otherData"]["app"] == "t"
        assert doc["otherData"]["extra"] is True

    def test_valid_doc_passes(self):
        assert validate_chrome_trace(_valid_doc()) == []

    def test_json_serializable(self):
        json.dumps(_valid_doc())

    def test_write_and_reload(self, tmp_path):
        c = TraceCollector()
        with c.span("s"):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(c, str(path), indent=1)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_write_metrics(self, tmp_path):
        path = tmp_path / "m.json"
        write_metrics({"schema": "repro.trace.metrics/1", "n": 3}, str(path))
        assert json.loads(path.read_text())["n"] == 3


class TestValidation:
    def test_non_object_document(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace(None) != []

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["missing or non-array traceEvents"]

    def test_bad_phase(self):
        errs = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}
        ]})
        assert any("bad ph" in e for e in errs)

    def test_missing_required_keys(self):
        errs = validate_chrome_trace({"traceEvents": [
            {"ph": "i", "ts": 0.0}
        ]})
        assert any("missing name" in e for e in errs)
        assert any("missing pid" in e for e in errs)
        assert any("missing tid" in e for e in errs)

    def test_negative_or_missing_ts(self):
        errs = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "i", "pid": 1, "tid": 1, "ts": -1}
        ]})
        assert any("bad ts" in e for e in errs)

    def test_complete_needs_duration(self):
        errs = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}
        ]})
        assert any("bad dur" in e for e in errs)

    def test_counter_needs_args(self):
        errs = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "C", "pid": 1, "tid": 0, "ts": 0}
        ]})
        assert any("counter without args" in e for e in errs)

    def test_metadata_event_needs_no_ts(self):
        assert validate_chrome_trace({"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "x"}}
        ]}) == []
