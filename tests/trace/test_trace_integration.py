"""End-to-end tracing: one traced (app, build) cell must produce a
schema-valid Chrome Trace document with events from all four layers
(toolchain, runtime, vgpu, bench) plus the runtime-overhead counters —
the PR's acceptance check, shared with ``python -m repro.bench trace``.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import trace_cli
from repro.trace import validate_chrome_trace
from repro.trace.categories import CATEGORY_NAMES, OVERHEAD_CATEGORIES


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("trace-out")
    out = str(out_dir / "trace.json")
    metrics_out = str(out_dir / "metrics.json")
    result = trace_cli.run_trace(
        trace_cli.SMOKE_APP, trace_cli.SMOKE_BUILD,
        out=out, metrics_out=metrics_out,
    )
    doc = json.loads(open(out).read())
    metrics = json.loads(open(metrics_out).read())
    return result, doc, metrics


@pytest.mark.trace
class TestTraceSmoke:
    def test_document_is_schema_valid(self, smoke):
        _, doc, _ = smoke
        assert validate_chrome_trace(doc) == []

    def test_all_four_layers_present(self, smoke):
        _, doc, _ = smoke
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"toolchain", "runtime", "vgpu", "bench"} <= cats

    def test_runtime_overhead_counter_present(self, smoke):
        _, doc, _ = smoke
        counters = [e for e in doc["traceEvents"]
                    if e["ph"] == "C" and e["name"] == "runtime_overhead"]
        assert counters, "missing runtime_overhead counter event"
        args = counters[0]["args"]
        assert "barriers.total" in args
        assert "shared_stack.high_water_bytes" in args
        assert "global_fallback.mallocs" in args

    def test_expected_span_names(self, smoke):
        _, doc, _ = smoke
        names = {e["name"] for e in doc["traceEvents"]}
        assert "toolchain.compile" in names
        assert "bench.launch" in names
        assert any(n.startswith("kernel ") for n in names)
        assert any(n.startswith("team ") for n in names)
        assert any(n.startswith("phase ") for n in names)

    def test_cache_events_present(self, smoke):
        _, doc, _ = smoke
        names = {e["name"] for e in doc["traceEvents"]}
        assert names & {"cache.hit", "cache.miss"}

    def test_metrics_document(self, smoke):
        result, _, metrics = smoke
        assert metrics["schema"] == "repro.trace.metrics/1"
        assert metrics["kernel"]["kernel_name"]
        assert metrics["kernel"]["cycles"] == result["profile"].cycles
        assert "overhead_counters" in metrics
        assert "compile_cache" in metrics
        assert "pipeline" in metrics

    def test_result_summary(self, smoke):
        result, _, _ = smoke
        assert result["events"] > 0
        assert set(result["categories"]) >= {"toolchain", "runtime", "vgpu", "bench"}


class TestCategories:
    def test_category_vocabulary(self):
        assert set(CATEGORY_NAMES) == {
            "target_init", "parallel_region", "worksharing", "shared_stack",
            "sync", "icv_query", "thread_state",
        }

    def test_both_runtime_flavours_categorized(self):
        names = set(OVERHEAD_CATEGORIES)
        assert "__kmpc_parallel_51" in names
        assert any(n.endswith("_old") for n in names)
