"""Unit tests for the trace collector layer."""

from __future__ import annotations

import threading

from repro.trace import (
    NULL_COLLECTOR,
    PID_DEVICE,
    PID_HOST,
    TraceCollector,
    TraceConfig,
)
from repro.trace.collector import (
    active_or_none,
    disable,
    enable,
    get_collector,
    install,
    reset,
    tracing_enabled,
)


def _events(collector, ph=None):
    events = collector.events_snapshot()
    if ph is not None:
        events = [e for e in events if e["ph"] == ph]
    return events


class TestTraceCollector:
    def test_metadata_events_on_construction(self):
        c = TraceCollector()
        meta = _events(c, "M")
        assert {e["pid"] for e in meta} == {PID_HOST, PID_DEVICE}
        assert all(e["name"] == "process_name" for e in meta)

    def test_span_records_complete_event(self):
        c = TraceCollector()
        with c.span("work", cat="bench", detail=42):
            pass
        (x,) = _events(c, "X")
        assert x["name"] == "work"
        assert x["cat"] == "bench"
        assert x["args"] == {"detail": 42}
        assert x["ts"] >= 0 and x["dur"] >= 0

    def test_span_records_on_exception(self):
        c = TraceCollector()
        try:
            with c.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert len(_events(c, "X")) == 1

    def test_span_at_uses_absolute_timestamps(self):
        c = TraceCollector()
        c.span_at("pass", "toolchain", c.epoch + 0.001, 0.002)
        (x,) = _events(c, "X")
        assert abs(x["ts"] - 1000.0) < 1.0
        assert abs(x["dur"] - 2000.0) < 1.0

    def test_instant_and_counter(self):
        c = TraceCollector()
        c.instant("hit", cat="toolchain", key="abc")
        c.counter("ov", {"a": 1, "b": 2}, cat="runtime", ts_us=7.0)
        (i,) = _events(c, "i")
        assert i["s"] == "t" and i["args"] == {"key": "abc"}
        (k,) = _events(c, "C")
        assert k["args"] == {"a": 1, "b": 2} and k["ts"] == 7.0

    def test_thread_safety_of_emit(self):
        c = TraceCollector()

        def emit_many():
            for i in range(200):
                c.instant(f"e{i}")

        threads = [threading.Thread(target=emit_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(_events(c, "i")) == 800

    def test_config_labels(self):
        c = TraceCollector(TraceConfig(labels={"app": "x"}))
        assert c.config.labels == {"app": "x"}


class TestNullCollector:
    def test_all_methods_are_noops(self):
        n = NULL_COLLECTOR
        with n.span("x", whatever=1):
            pass
        n.span_at("x", "c", 0.0, 1.0)
        n.complete("x", "c", 0.0, 1.0)
        n.instant("x")
        n.counter("x", {"a": 1})
        assert n.events == []
        assert n.enabled is False

    def test_span_returns_shared_sentinel(self):
        assert NULL_COLLECTOR.span("a") is NULL_COLLECTOR.span("b")


class TestProcessWideState:
    def test_default_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            assert get_collector() is NULL_COLLECTOR
            assert tracing_enabled() is False
            assert active_or_none() is None
        finally:
            reset()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        reset()
        try:
            c = get_collector()
            assert isinstance(c, TraceCollector)
            assert active_or_none() is c
        finally:
            reset()

    def test_enable_disable(self):
        try:
            c = enable()
            assert get_collector() is c
            disable()
            assert get_collector() is NULL_COLLECTOR
        finally:
            reset()

    def test_install_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset()
        try:
            before = get_collector()
            fresh = TraceCollector()
            with install(fresh) as c:
                assert c is fresh
                assert get_collector() is fresh
            assert get_collector() is before
        finally:
            reset()
