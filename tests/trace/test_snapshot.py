"""OverheadSnapshot scoping + LaunchResult.profile_summary."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.trace import CATEGORY_NAMES, OverheadSnapshot
from repro.vgpu.profiler import KernelProfile


def _profile(**overrides) -> KernelProfile:
    profile = KernelProfile("k", 2, 4)
    profile.cycles = 1000
    profile.instructions = 500
    profile.runtime_calls = Counter({"sync": 8, "icv_query": 24})
    profile.function_cycles = Counter({
        "__kmpc_barrier": 160,          # sync
        "omp_get_thread_num": 120,      # icv_query
        "__omp_outlined.k": 400,        # uncategorized: app code
    })
    profile.barriers = 8
    profile.barriers_aligned = 8
    profile.device_mallocs = 2
    profile.device_frees = 2
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


class TestOverheadSnapshot:
    def test_from_profile_groups_cycles_by_category(self):
        snap = OverheadSnapshot.from_profile(_profile())
        assert snap.category_cycles == {"sync": 160, "icv_query": 120}
        assert snap.runtime_calls == {"sync": 8, "icv_query": 24}
        # App code is compute, not runtime overhead.
        assert "__omp_outlined.k" not in snap.category_cycles

    def test_delta_cancels_shared_setup(self):
        hi = OverheadSnapshot.from_profile(_profile(
            runtime_calls=Counter({"sync": 16, "icv_query": 24}),
            function_cycles=Counter({
                "__kmpc_barrier": 480, "omp_get_thread_num": 120,
            }),
            cycles=1400,
        ))
        lo = OverheadSnapshot.from_profile(_profile())
        d = hi.delta(lo)
        assert d.runtime_calls["sync"] == 8
        assert d.runtime_calls["icv_query"] == 0
        assert d.category_cycles["sync"] == 320
        assert d.cycles == 400
        assert d.per_call_cycles("sync") == 40.0

    def test_per_call_cycles_none_without_calls_or_cycles(self):
        snap = OverheadSnapshot.from_profile(_profile())
        assert snap.per_call_cycles("worksharing") is None
        untraced = OverheadSnapshot.from_profile(
            _profile(function_cycles=Counter())
        )
        assert untraced.per_call_cycles("sync") is None

    def test_to_dict_drops_zero_entries(self):
        d = OverheadSnapshot.from_profile(_profile()).delta(
            OverheadSnapshot.from_profile(_profile())
        ).to_dict()
        assert d["runtime_calls"] == {}
        assert d["category_cycles"] == {}


class TestLaunchResultProfileSummary:
    @pytest.fixture(scope="class")
    def launch_result(self):
        from repro.bench.micro import build_micro_program, runtime_options
        from repro.toolchain.service import ToolchainSession
        from repro.vgpu import GPUConfig, LaunchSpec, VirtualGPU

        compiled = ToolchainSession().compile(
            build_micro_program([1]), runtime_options("newrt")
        )
        gpu = VirtualGPU(compiled.module, config=GPUConfig())
        spec = LaunchSpec(
            kernel="barriers", num_teams=2, threads_per_team=4,
            args=tuple(
                compiled.abi("barriers").marshal(gpu, {"n": 8, "reps": 3})
            ),
        )
        return gpu.run(spec)

    def test_summary_without_tracing(self, launch_result):
        """The counters behind the summary live on the untraced fast
        path — no collector was installed for this launch."""
        summary = launch_result.profile_summary()
        assert launch_result.profile.function_cycles == {}  # untraced
        assert set(summary["runtime_calls"]) == set(CATEGORY_NAMES)
        assert summary["runtime_calls"]["sync"] > 0
        assert summary["runtime_calls"]["parallel_region"] > 0
        assert summary["barriers"]["total"] == (
            summary["barriers"]["aligned"] + summary["barriers"]["unaligned"]
        )
        assert summary["global_fallback"] == {"mallocs": 0, "frees": 0}

    def test_summary_matches_profile_counters(self, launch_result):
        summary = launch_result.profile_summary()
        profile = launch_result.profile
        for category, count in profile.runtime_calls.items():
            assert summary["runtime_calls"][category] == count
        assert summary["shared_stack_high_water"] == profile.shared_stack_high_water

    def test_summary_none_without_profile(self, launch_result):
        import copy

        failed = copy.copy(launch_result)
        failed.profile = None
        assert failed.profile_summary() is None
