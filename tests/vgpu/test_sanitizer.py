"""Shadow-memory sanitizer: diagnostics, scoping, zero-cost guarantee."""

import pytest

from repro.ir import I32, I64, Module, verify_module
from repro.vgpu import (
    OutOfBoundsAccess,
    SanitizedMemorySystem,
    UninitializedRead,
    UseAfterFree,
    VirtualGPU,
)
from repro.memory.addrspace import AddressSpace, make_pointer
from repro.vgpu.config import ENGINES
from tests.conftest import make_kernel


@pytest.fixture
def msys():
    m = SanitizedMemorySystem()
    m.begin_launch()
    return m


class TestDeviceHeapChecks:
    def test_clean_malloc_store_load_round_trip(self, msys):
        ptr = msys.malloc(8)
        msys.store(ptr, 7, I64)
        assert msys.load(ptr, I64) == 7

    def test_uninitialized_typed_read_is_flagged(self, msys):
        ptr = msys.malloc(8)
        with pytest.raises(UninitializedRead, match="never written"):
            msys.load(ptr, I64)

    def test_raw_reads_are_exempt_from_the_shadow(self, msys):
        # memcpy of structs with padding is legal: raw reads don't check
        # the written-byte shadow.
        ptr = msys.malloc(8)
        assert msys.read_raw(ptr, 8) == bytes(8)

    def test_raw_writes_mark_the_shadow(self, msys):
        ptr = msys.malloc(8)
        msys.memset(ptr, 0, 8)
        assert msys.load(ptr, I64) == 0  # memset counts as initialization

    def test_partial_initialization_still_flags_the_hole(self, msys):
        ptr = msys.malloc(8)
        msys.store(ptr, 1, I32)  # low 4 bytes only
        with pytest.raises(UninitializedRead):
            msys.load(ptr, I64)

    def test_allocation_overrun(self, msys):
        ptr = msys.malloc(8)
        msys.malloc(8)  # neighbour keeps the overrun inside the segment
        with pytest.raises(OutOfBoundsAccess, match="overruns"):
            msys.store(ptr + 4, 0, I64)  # bytes 4..12 of an 8B allocation

    def test_use_after_free(self, msys):
        ptr = msys.malloc(8)
        msys.store(ptr, 7, I64)
        msys.free(ptr)
        with pytest.raises(UseAfterFree, match="freed"):
            msys.load(ptr, I64)

    def test_raw_access_to_freed_memory_is_also_flagged(self, msys):
        ptr = msys.malloc(8)
        msys.free(ptr)
        with pytest.raises(UseAfterFree):
            msys.read_raw(ptr, 4)


class TestSegmentChecks:
    def test_guard_zone(self, msys):
        with pytest.raises(OutOfBoundsAccess, match="guard zone"):
            msys.load(make_pointer(AddressSpace.GLOBAL, 4), I32)

    def test_past_the_bump_pointer(self, msys):
        beyond = make_pointer(AddressSpace.GLOBAL, msys.global_seg.brk + 64)
        with pytest.raises(OutOfBoundsAccess, match="past the end"):
            msys.store(beyond, 1, I32)

    def test_host_prepared_data_gets_bounds_checks_only(self):
        # Allocations made before begin_launch (input arrays the host
        # staged) are exempt from the device-heap shadow: clean kernels
        # reading their inputs must run unflagged.
        m = SanitizedMemorySystem()
        host = m.malloc(8)
        m.begin_launch()
        assert m.load(host, I64) == 0  # uninit, but host-scoped: no flag


def _busy_module():
    module = Module("m")
    func, b = make_kernel(module, params=())
    ptr = b.intrinsic("malloc", [b.i64(16)])
    b.store(b.i64(7), ptr)
    b.load(I64, ptr)
    b.barrier()
    b.intrinsic("free", [ptr])
    b.ret()
    verify_module(module)
    return module


def _overrun_module():
    module = Module("m")
    func, b = make_kernel(module, params=())
    ptr = b.intrinsic("malloc", [b.i64(8)])
    b.store(b.i64(7), b.ptradd(ptr, 4, "p4"))
    b.ret()
    verify_module(module)
    return module


class TestKernelLevel:
    def test_sanitized_profile_is_bit_identical(self):
        # The zero-cycle guarantee: sanitize=True must not perturb any
        # profiled number on a clean kernel, under either engine.
        for engine in ENGINES:
            module = _busy_module()
            plain = VirtualGPU(module, engine=engine).launch("kern", [], 2, 4)
            checked = VirtualGPU(module, engine=engine,
                                 sanitize=True).launch("kern", [], 2, 4)
            assert checked.to_dict() == plain.to_dict(), engine

    def test_overrun_diagnostic_is_identical_across_engines(self):
        messages, contexts = [], []
        for engine in ENGINES:
            gpu = VirtualGPU(_overrun_module(), engine=engine, sanitize=True)
            with pytest.raises(OutOfBoundsAccess) as excinfo:
                gpu.launch("kern", [], 1, 1)
            messages.append(str(excinfo.value))
            assert excinfo.value.context is not None
            contexts.append(excinfo.value.context.to_dict())
        assert messages[0] == messages[1]
        assert contexts[0] == contexts[1]
        assert contexts[0]["function"] == "kern"

    def test_uninitialized_read_in_a_kernel(self):
        module = Module("m")
        func, b = make_kernel(module, params=())
        ptr = b.intrinsic("malloc", [b.i64(8)])
        b.load(I64, ptr)
        b.ret()
        verify_module(module)
        for engine in ENGINES:
            gpu = VirtualGPU(module, engine=engine, sanitize=True)
            with pytest.raises(UninitializedRead):
                gpu.launch("kern", [], 1, 1)

    def test_unsanitized_run_does_not_flag_the_overrun(self):
        # The same buggy kernel runs to completion without the sanitizer
        # (the bump allocator leaves slack) — the diagnostic is opt-in.
        profile = VirtualGPU(_overrun_module()).launch("kern", [], 1, 1)
        assert profile.cycles > 0
