"""Interpreter: arithmetic, control flow, calls, recursion."""

import numpy as np
import pytest

from repro.ir import (
    F64,
    Function,
    FunctionType,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR_GLOBAL,
    VOID,
    verify_module,
)
from repro.vgpu import SimulationError, TrapError, VirtualGPU
from tests.conftest import make_function, make_kernel


def run_scalar_kernel(module, build, args=(), teams=1, threads=1, result_ty=I64):
    """Build a kernel writing one scalar result to out[tid]; run it."""
    func, b = make_kernel(module, params=(PTR_GLOBAL,) + tuple(a[1] for a in args),
                          arg_names=["out"] + [a[0] for a in args])
    value = build(b, func)
    tid = b.thread_id()
    bid = b.block_id()
    bdim = b.block_dim()
    idx = b.sext(b.add(b.mul(bid, bdim), tid), I64)
    b.store(value, b.array_gep(func.args[0], result_ty, idx))
    b.ret()
    verify_module(module)
    gpu = VirtualGPU(module)
    n = teams * threads
    import numpy as np

    dtype = np.float64 if result_ty == F64 else np.int64
    out = gpu.alloc_array(np.zeros(n, dtype=dtype))
    gpu.launch(func.name, [out] + [a[2] for a in args], teams, threads)
    return gpu.read_array(out, dtype, n)


class TestArithmetic:
    def test_signed_division_truncates_toward_zero(self, module):
        out = run_scalar_kernel(
            module, lambda b, f: b.sdiv(b.i64(-7), b.i64(2)))
        assert out[0] == -3

    def test_srem_sign_follows_dividend(self, module):
        out = run_scalar_kernel(
            module, lambda b, f: b.srem(b.i64(-7), b.i64(2)))
        assert out[0] == -1

    def test_unsigned_division(self, module):
        out = run_scalar_kernel(
            module, lambda b, f: b.udiv(b.i64(7), b.i64(2)))
        assert out[0] == 3

    def test_division_by_zero_traps(self, module):
        func, b = make_kernel(module, params=(I64,), arg_names=["d"])
        b.sdiv(b.i64(1), func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        with pytest.raises(TrapError):
            gpu.launch("kern", [0], 1, 1)

    def test_wrapping_add(self, module):
        def build(b, f):
            big = b.i64((1 << 63) - 1)
            return b.add(big, b.i64(1))

        out = run_scalar_kernel(module, build)
        assert out[0] == -(1 << 63)  # wrapped

    def test_shift_masks_amount(self, module):
        out = run_scalar_kernel(module, lambda b, f: b.shl(b.i64(1), b.i64(65)))
        assert out[0] == 2

    def test_float_division_by_zero_is_inf(self, module):
        out = run_scalar_kernel(
            module, lambda b, f: b.fdiv(b.f64(1.0), b.f64(0.0)), result_ty=F64)
        assert np.isinf(out[0])


class TestControlFlow:
    def test_loop_sums(self, module):
        def build(b, f):
            func = b.function
            entry = b.block
            loop = func.add_block("loop")
            done = func.add_block("done")
            b.br(loop)
            b.set_insert_point(loop)
            iv = b.phi(I64, "iv")
            acc = b.phi(I64, "acc")
            iv.add_incoming(b.i64(0), entry)
            acc.add_incoming(b.i64(0), entry)
            nxt = b.add(iv, b.i64(1))
            total = b.add(acc, iv)
            iv.add_incoming(nxt, loop)
            acc.add_incoming(total, loop)
            b.cond_br(b.icmp("slt", nxt, b.i64(10)), loop, done)
            b.set_insert_point(done)
            result = b.phi(I64, "res")
            result.add_incoming(total, loop)
            return result

        out = run_scalar_kernel(module, build)
        assert out[0] == sum(range(10))

    def test_phi_parallel_copy_semantics(self, module):
        """Swapping phis must read all incomings before writing."""
        def build(b, f):
            func = b.function
            entry = b.block
            loop = func.add_block("loop")
            done = func.add_block("done")
            b.br(loop)
            b.set_insert_point(loop)
            x = b.phi(I64, "x")
            y = b.phi(I64, "y")
            n = b.phi(I64, "n")
            x.add_incoming(b.i64(1), entry)
            y.add_incoming(b.i64(2), entry)
            n.add_incoming(b.i64(0), entry)
            # swap x and y each iteration
            x.add_incoming(y, loop)
            y.add_incoming(x, loop)
            nxt = b.add(n, b.i64(1))
            n.add_incoming(nxt, loop)
            b.cond_br(b.icmp("slt", nxt, b.i64(3)), loop, done)
            b.set_insert_point(done)
            res = b.phi(I64)
            res.add_incoming(x, loop)
            return res

        out = run_scalar_kernel(module, build)
        # x per loop entry: 1, 2, 1 — the exit edge reads iteration 3's x.
        # A sequential (non-parallel) phi copy would collapse x == y.
        assert out[0] == 1

    def test_unreachable_traps(self, module):
        func, b = make_kernel(module, params=())
        b.unreachable()
        gpu = VirtualGPU(module)
        with pytest.raises(TrapError):
            gpu.launch("kern", [], 1, 1)


class TestCalls:
    def test_direct_call_and_return(self, module):
        callee, cb = make_function(module, "sq", ret=I64, params=(I64,))
        cb.ret(cb.mul(callee.args[0], callee.args[0]))

        out = run_scalar_kernel(module, lambda b, f: b.call(callee, [b.i64(7)]))
        assert out[0] == 49

    def test_recursion(self, module):
        fact = module.add_function(Function("fact", FunctionType(I64, (I64,)), arg_names=["n"]))
        b = IRBuilder(module, fact.add_block("entry"))
        base = fact.add_block("base")
        rec = fact.add_block("rec")
        b.cond_br(b.icmp("sle", fact.args[0], b.i64(1)), base, rec)
        b.set_insert_point(base)
        b.ret(b.i64(1))
        b.set_insert_point(rec)
        sub = b.call(fact, [b.sub(fact.args[0], b.i64(1))])
        b.ret(b.mul(fact.args[0], sub))

        out = run_scalar_kernel(module, lambda b, f: b.call(fact, [b.i64(10)]))
        assert out[0] == 3628800

    def test_indirect_call_through_function_address(self, module):
        callee, cb = make_function(module, "callee", ret=I64, params=())
        cb.ret(cb.i64(42))

        def build(b, f):
            addr = b.cast("ptrtoint", callee, I64)
            return b.call_indirect(addr, [], I64)

        out = run_scalar_kernel(module, build)
        assert out[0] == 42

    def test_call_stack_overflow_detected(self, module):
        f = module.add_function(Function("inf", FunctionType(VOID, ())))
        b = IRBuilder(module, f.add_block("entry"))
        b.call(f, [])
        b.ret()
        kern, kb = make_kernel(module, params=())
        kb.call(f, [])
        kb.ret()
        gpu = VirtualGPU(module)
        with pytest.raises(SimulationError):
            gpu.launch("kern", [], 1, 1)

    def test_undefined_function_rejected(self, module):
        from repro.ir import FunctionType

        decl = module.declare("nowhere", FunctionType(VOID, ()))
        kern, kb = make_kernel(module, params=())
        kb.call(decl, [])
        kb.ret()
        gpu = VirtualGPU(module)
        with pytest.raises(SimulationError):
            gpu.launch("kern", [], 1, 1)


class TestLaunchValidation:
    def test_wrong_arg_count(self, module):
        func, b = make_kernel(module, params=(I64,))
        b.ret()
        gpu = VirtualGPU(module)
        with pytest.raises(SimulationError):
            gpu.launch("kern", [], 1, 1)

    def test_too_many_threads(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module)
        with pytest.raises(SimulationError):
            gpu.launch("kern", [], 1, 100000)

    def test_kernel_needs_body(self, module):
        from repro.ir import FunctionType

        module.declare("ghost", FunctionType(VOID, ()))
        gpu = VirtualGPU(module)
        with pytest.raises(SimulationError):
            gpu.launch("ghost", [], 1, 1)
