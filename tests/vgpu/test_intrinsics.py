"""GPU identity intrinsics, math, assumptions, traps and device printf."""

import math

import numpy as np
import pytest

from repro.ir import F64, I64, PTR_GLOBAL
from repro.vgpu import AssumptionViolation, TrapError, VirtualGPU
from tests.conftest import make_kernel


class TestIdentity:
    def test_ids_and_geometry(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        tid = b.thread_id()
        bid = b.block_id()
        bdim = b.block_dim()
        gdim = b.grid_dim()
        idx = b.sext(b.add(b.mul(bid, bdim), tid), I64)
        packed = b.add(
            b.mul(b.sext(gdim, I64), b.i64(1000000)),
            b.add(b.mul(b.sext(bdim, I64), b.i64(1000)), idx),
        )
        b.store(packed, b.array_gep(func.args[0], I64, idx))
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(6, dtype=np.int64))
        gpu.launch("kern", [out], 2, 3)
        vals = gpu.read_array(out, np.int64, 6)
        for i, v in enumerate(vals):
            assert v == 2 * 1000000 + 3 * 1000 + i

    def test_warp_and_lane(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        lane = b.intrinsic("gpu.lane_id", [], "lane")
        tid = b.sext(b.thread_id(), I64)
        b.store(b.sext(lane, I64), b.array_gep(func.args[0], I64, tid))
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(64, dtype=np.int64))
        gpu.launch("kern", [out], 1, 64)
        vals = gpu.read_array(out, np.int64, 64)
        assert list(vals) == [t % 32 for t in range(64)]


class TestMath:
    @pytest.mark.parametrize("name,arg,expected", [
        ("llvm.sqrt.f64", 9.0, 3.0),
        ("llvm.exp.f64", 0.0, 1.0),
        ("llvm.log.f64", 1.0, 0.0),
        ("llvm.sin.f64", 0.0, 0.0),
        ("llvm.cos.f64", 0.0, 1.0),
        ("llvm.fabs.f64", -2.5, 2.5),
        ("llvm.floor.f64", 2.7, 2.0),
    ])
    def test_unary_math(self, module, name, arg, expected):
        func, b = make_kernel(module, params=(PTR_GLOBAL, F64), arg_names=["out", "x"])
        v = b.intrinsic(name, [func.args[1]])
        b.store(v, func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1))
        gpu.launch("kern", [out, arg], 1, 1)
        assert gpu.read_array(out, np.float64, 1)[0] == pytest.approx(expected)

    def test_pow_fmin_fmax(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        p = b.intrinsic("llvm.pow.f64", [b.f64(2.0), b.f64(10.0)])
        mn = b.intrinsic("llvm.fmin.f64", [p, b.f64(100.0)])
        mx = b.intrinsic("llvm.fmax.f64", [mn, b.f64(512.0)])
        b.store(mx, func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1))
        gpu.launch("kern", [out], 1, 1)
        assert gpu.read_array(out, np.float64, 1)[0] == 512.0

    def test_sqrt_of_negative_is_nan(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        v = b.intrinsic("llvm.sqrt.f64", [b.f64(-1.0)])
        b.store(v, func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1))
        gpu.launch("kern", [out], 1, 1)
        assert math.isnan(gpu.read_array(out, np.float64, 1)[0])

    def test_math_counts_as_flop(self, module):
        func, b = make_kernel(module, params=(F64,), arg_names=["x"])
        b.intrinsic("llvm.sqrt.f64", [func.args[0]])
        b.ret()
        gpu = VirtualGPU(module)
        profile = gpu.launch("kern", [2.0], 1, 1)
        assert profile.flops >= 1


class TestAssumptions:
    def _assume_kernel(self, module):
        func, b = make_kernel(module, params=(I64,), arg_names=["x"])
        b.assume(b.icmp("eq", func.args[0], b.i64(42)))
        b.ret()

    def test_violated_assumption_raises_in_debug(self, module):
        self._assume_kernel(module)
        gpu = VirtualGPU(module, debug_checks=True)
        with pytest.raises(AssumptionViolation):
            gpu.launch("kern", [7], 1, 1)

    def test_valid_assumption_passes_in_debug(self, module):
        self._assume_kernel(module)
        gpu = VirtualGPU(module, debug_checks=True)
        gpu.launch("kern", [42], 1, 1)

    def test_assumption_ignored_in_release(self, module):
        self._assume_kernel(module)
        gpu = VirtualGPU(module, debug_checks=False)
        gpu.launch("kern", [7], 1, 1)

    def test_expect_passes_value_through(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        cond = b.icmp("eq", b.thread_id(), b.i32(0))
        hinted = b.intrinsic("llvm.expect", [cond, b.i1(True)])
        b.store(b.zext(hinted, I64), func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == 1


class TestPrintAndTrap:
    def test_print_i64_collected(self, module):
        func, b = make_kernel(module, params=())
        b.intrinsic("rt.print_i64", [b.i64(-5)])
        b.ret()
        gpu = VirtualGPU(module)
        profile = gpu.launch("kern", [], 1, 1)
        assert profile.output == ["-5"]

    def test_print_str_resolves_string_table(self, module):
        from repro.runtime.common import cstring

        msg = cstring(module, "hello device")
        func, b = make_kernel(module, params=())
        b.intrinsic("rt.print_str", [b.cast("ptrtoint", msg, I64)])
        b.ret()
        gpu = VirtualGPU(module)
        profile = gpu.launch("kern", [], 1, 1)
        assert profile.output == ["hello device"]

    def test_trap_reports_last_message(self, module):
        from repro.runtime.common import cstring

        msg = cstring(module, "assertion failed: boom")
        func, b = make_kernel(module, params=())
        b.intrinsic("rt.print_str", [b.cast("ptrtoint", msg, I64)])
        b.intrinsic("llvm.trap")
        b.ret()
        gpu = VirtualGPU(module)
        with pytest.raises(TrapError, match="boom"):
            gpu.launch("kern", [], 1, 1)
