"""The scalar engines must never pay for the warp engine.

NumPy is a hard dependency of :mod:`repro.vgpu.warp` only; a
legacy or decoded launch must complete without importing either the
warp module or numpy (the imports in the interpreter are deferred for
exactly this reason).  Run in a subprocess so the assertion sees a
clean ``sys.modules``.
"""

import subprocess
import sys

import pytest

_PROBE = """
import sys
from repro.ir import I64, Module, verify_module
from repro.ir.module import Function
from repro.ir.types import FunctionType, VOID, PTR_GLOBAL
from repro.ir.builder import IRBuilder
from repro.vgpu import VirtualGPU
from repro.vgpu.launchspec import LaunchSpec

module = Module("m")
func = module.add_function(
    Function("kern", FunctionType(VOID, (PTR_GLOBAL,)))
)
func.attrs.add("kernel")
b = IRBuilder(module, func.add_block("entry"))
tid = b.sext(b.thread_id(), I64)
b.store(tid, b.ptradd(func.args[0], b.mul(tid, b.i64(8))))
b.ret()
verify_module(module)

gpu = VirtualGPU(module, engine={engine!r})
buf = gpu.alloc_bytes(8 * 8)
gpu.run(LaunchSpec(kernel="kern", num_teams=1, threads_per_team=8,
                   args=(buf,)))
assert gpu.read_scalar(buf + 8 * 3, I64) == 3
assert "repro.vgpu.warp" not in sys.modules, "warp module leaked in"
assert "numpy" not in sys.modules, "numpy leaked into a scalar launch"
print("CLEAN")
"""


@pytest.mark.parametrize("engine", ["legacy", "decoded"])
def test_scalar_launch_never_imports_warp_or_numpy(engine):
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE.format(engine=engine)],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "CLEAN" in proc.stdout
