"""Pre-decoded engine: decode pass, slot assignment, caching, parity."""

import numpy as np
import pytest

from repro.ir import (
    F64,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR_GLOBAL,
    VOID,
    verify_module,
)
from repro.vgpu import CostModel, GPUConfig, SimulationError, VirtualGPU
from repro.vgpu import decode as D
from tests.conftest import make_function, make_kernel


def _phi_loop_module():
    """sum = Σ i for i in range(n): a loop with two phis."""
    module = Module("loop")
    func, b = make_kernel(module, params=(PTR_GLOBAL, I64), arg_names=["out", "n"])
    entry = b.block
    header = func.add_block("header")
    body = func.add_block("body")
    exit_ = func.add_block("exit")
    b.br(header)

    b.set_insert_point(header)
    i = b.phi(I64, "i")
    acc = b.phi(I64, "acc")
    i.add_incoming(b.i64(0), entry)
    acc.add_incoming(b.i64(0), entry)
    b.cond_br(b.icmp("slt", i, func.args[1]), body, exit_)

    b.set_insert_point(body)
    nacc = b.add(acc, i)
    ni = b.add(i, b.i64(1))
    i.add_incoming(ni, body)
    acc.add_incoming(nacc, body)
    b.br(header)

    b.set_insert_point(exit_)
    b.store(acc, func.args[0])
    b.ret()
    verify_module(module)
    return module, func


class TestDecodePass:
    def test_phis_emit_no_ops(self):
        module, func = _phi_loop_module()
        code = D.decode_function(func, CostModel(GPUConfig()), 32)
        opcodes = [op[1] for op in code.ops]
        assert "phi" not in opcodes
        # br/condbr carry the phi moves instead.
        assert "br" in opcodes and "condbr" in opcodes

    def test_every_value_gets_a_slot(self):
        module, func = _phi_loop_module()
        code = D.decode_function(func, CostModel(GPUConfig()), 32)
        n_insts = sum(len(blk.instructions) for blk in func.blocks)
        # args + every instruction (incl. phis/void) + constants
        assert code.num_slots >= len(func.args) + n_insts
        assert len(code.arg_slots) == len(func.args)

    def test_constants_prefilled_not_value_deduped(self):
        """0.0 and -0.0 are equal but must keep distinct slots.

        (The builder folds constant arithmetic, so the constants are
        used as store operands, which survive to decode unfolded.)
        """
        module = Module("m")
        func, b = make_kernel(
            module, params=(PTR_GLOBAL, PTR_GLOBAL), arg_names=["a", "out2"]
        )
        b.store(b.f64(0.0), func.args[0])
        b.store(b.f64(-0.0), func.args[1])
        b.ret()
        verify_module(module)
        code = D.decode_function(func, CostModel(GPUConfig()), 32)
        consts = [v for _, v in code.static_init]
        zeros = [v for v in consts if isinstance(v, float) and v == 0.0]
        signs = {np.copysign(1.0, v) for v in zeros}
        assert signs == {1.0, -1.0}

    def test_static_costs_folded(self):
        module, func = _phi_loop_module()
        cost = CostModel(GPUConfig())
        code = D.decode_function(func, cost, 32)
        add_ops = [op for op in code.ops if op[1] == "add"]
        assert add_ops and all(op[-1] == cost.config.int_op_cost for op in add_ops)

    def test_decode_cache_is_per_device(self):
        module, func = _phi_loop_module()
        gpu_a = VirtualGPU(module, engine="decoded")
        gpu_b = VirtualGPU(module, engine="decoded")
        bound_a = D.bind_function(gpu_a, func)
        bound_b = D.bind_function(gpu_b, func)
        assert bound_a is not bound_b  # each device decodes its own view
        assert D.bind_function(gpu_a, func) is bound_a  # cached per device

    def test_in_place_mutation_not_served_stale(self):
        """Passes mutate functions in place; a device created after the
        mutation must decode the new IR, not a memoized old decode."""
        module, func = _phi_loop_module()
        gpu_a = VirtualGPU(module, engine="decoded")
        before = D.bind_function(gpu_a, func).code
        n_before = len(before.ops)
        # Simulate an optimizing pass: drop the loop, store 45 directly.
        for block in list(func.blocks)[1:]:
            func.remove_block(block)
        entry = func.blocks[0]
        entry.instructions.clear()
        b = IRBuilder(module, entry)
        b.store(b.i64(45), func.args[0])
        b.ret()
        verify_module(module)
        gpu_b = VirtualGPU(module, engine="decoded")
        after = D.bind_function(gpu_b, func).code
        assert len(after.ops) < n_before
        out = gpu_b.alloc_array(np.zeros(1, dtype=np.int64))
        gpu_b.launch(func.name, [out, 10], 1, 1)
        assert gpu_b.read_array(out, np.int64, 1)[0] == 45


class TestDecodedExecution:
    def _run(self, engine, n=10, sim_jobs=None):
        module, func = _phi_loop_module()
        gpu = VirtualGPU(module, engine=engine)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        profile = gpu.launch(func.name, [out, n], 4, 8, sim_jobs=sim_jobs)
        return gpu.read_array(out, np.int64, 1)[0], profile

    def test_loop_result_matches_legacy(self):
        val_dec, prof_dec = self._run("decoded")
        val_leg, prof_leg = self._run("legacy")
        assert val_dec == val_leg == sum(range(10))
        assert prof_dec.cycles == prof_leg.cycles
        assert prof_dec.instructions == prof_leg.instructions
        assert prof_dec.opcode_counts == prof_leg.opcode_counts
        assert prof_dec.team_cycles == prof_leg.team_cycles

    def test_parallel_team_simulation_is_deterministic(self):
        val_serial, prof_serial = self._run("decoded", sim_jobs=1)
        val_par, prof_par = self._run("decoded", sim_jobs=4)
        assert val_serial == val_par
        assert prof_serial.cycles == prof_par.cycles
        assert prof_serial.team_cycles == prof_par.team_cycles
        assert prof_serial.opcode_counts == prof_par.opcode_counts

    def test_call_to_undefined_function_message(self):
        module = Module("m")
        ext = module.add_function(
            Function("ext", FunctionType(I64, ()), linkage="external")
        )
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        b.store(b.call(ext, []), func.args[0])
        b.ret()
        verify_module(module)
        gpu = VirtualGPU(module, engine="decoded")
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        with pytest.raises(SimulationError, match=r"call to undefined function @ext"):
            gpu.launch("kern", [out], 1, 1)

    def test_division_by_zero_parity(self):
        for engine in ("decoded", "legacy"):
            module = Module("m")
            func, b = make_kernel(module, params=(I64,), arg_names=["d"])
            b.sdiv(b.i64(1), func.args[0])
            b.ret()
            verify_module(module)
            gpu = VirtualGPU(module, engine=engine)
            from repro.vgpu import TrapError

            with pytest.raises(TrapError, match="integer division by zero"):
                gpu.launch("kern", [0], 1, 1)

    def test_engine_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "legacy")
        module, func = _phi_loop_module()
        gpu = VirtualGPU(module)
        assert gpu.engine == "legacy"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.raises(ValueError):
            VirtualGPU(module)
