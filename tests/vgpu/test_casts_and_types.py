"""Interpreter cast semantics and type-width behaviors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import F32, F64, I8, I16, I32, I64, PTR_GLOBAL, verify_module
from repro.vgpu import VirtualGPU
from tests.conftest import make_kernel


def run_value(module, build, result_ty=I64):
    func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
    v = build(b)
    b.store(v, func.args[0])
    b.ret()
    verify_module(module)
    gpu = VirtualGPU(module)
    dtype = np.float64 if result_ty == F64 else np.int64
    out = gpu.alloc_array(np.zeros(1, dtype=dtype))
    gpu.launch("kern", [out], 1, 1)
    return gpu.read_array(out, dtype, 1)[0]


class TestCasts:
    def test_sext_preserves_sign(self, module):
        from repro.ir.values import Constant

        v = run_value(module, lambda b: b.sext(Constant(I8, -5), I64))
        assert v == -5

    def test_zext_ignores_sign(self, module):
        from repro.ir.values import Constant

        # Block create-time folding by routing through an instruction.
        def build(b):
            x = b.add(Constant(I8, 0), Constant(I8, 0))
            y = b.or_(x, Constant(I8, 0xFB))
            return b.zext(y, I64)

        assert run_value(module, build) == 0xFB

    def test_trunc_wraps(self, module):
        def build(b):
            big = b.add(b.i64(0x1_0000_0005), b.i64(0))
            return b.sext(b.trunc(big, I32), I64)

        assert run_value(module, build) == 5

    def test_sitofp_negative(self, module):
        def build(b):
            x = b.add(b.i64(-3), b.i64(0))
            return b.sitofp(x, F64)

        assert run_value(module, build, F64) == -3.0

    def test_uitofp_treats_bits_unsigned(self, module):
        from repro.ir.values import Constant

        def build(b):
            x = b.add(Constant(I8, 0), Constant(I8, 0))
            y = b.or_(x, Constant(I8, 0xFF))
            return b.uitofp(y, F64)

        assert run_value(module, build, F64) == 255.0

    def test_fptosi_truncates(self, module):
        def build(b):
            x = b.fadd(b.f64(2.9), b.f64(0.0))
            return b.fptosi(x, I64)

        assert run_value(module, build) == 2

    def test_fpext_fptrunc_roundtrip_loses_precision(self, module):
        def build(b):
            x = b.fadd(b.f64(0.1), b.f64(0.0))
            small = b.cast("fptrunc", x, F32)
            return b.cast("fpext", small, F64)

        v = run_value(module, build, F64)
        assert v == pytest.approx(0.1, rel=1e-6)

    def test_ptrtoint_inttoptr_roundtrip(self, module):
        from repro.ir import PTR

        func, b = make_kernel(module, params=(PTR_GLOBAL, PTR_GLOBAL),
                              arg_names=["out", "data"])
        addr = b.cast("ptrtoint", func.args[1], I64)
        back = b.cast("inttoptr", b.add(addr, b.i64(8)), PTR)
        b.store(b.i64(99), back)
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        data = gpu.alloc_array(np.zeros(4, dtype=np.int64))
        gpu.launch("kern", [out, data], 1, 1)
        assert gpu.read_array(data, np.int64, 4)[1] == 99


class TestNarrowWidthArithmetic:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(-300, 300), st.integers(-300, 300))
    def test_i16_add_wraps_like_hardware(self, a, b_val):
        from repro.ir import Module
        from repro.ir.values import Constant

        module = Module("w")

        def build(b):
            x = b.add(Constant(I16, a), Constant(I16, 0))
            y = b.add(x, Constant(I16, b_val))
            return b.sext(y, I64)

        got = run_value(module, build)
        expected = I16.to_signed(I16.wrap(a + b_val))
        assert got == expected
