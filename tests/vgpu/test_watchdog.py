"""Wall-clock watchdog for team simulation — serial and parallel.

Both phase drivers honour the same cooperative abort
(:class:`repro.vgpu.CooperativeWatchdog`): teams poll the deadline at
phase boundaries, so ``sim_jobs=1`` launches are bounded exactly like
``sim_jobs=N`` ones (historically the serial path ignored
``watchdog_s`` silently).
"""

import pytest

from repro.ir import I64, Module, verify_module
from repro.vgpu import VirtualGPU, WatchdogExpired
from tests.conftest import make_kernel


def _barrier_loop_module(iterations):
    """kern(): *iterations* barrier phases — abortable at each one."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    entry = b.block
    loop = func.add_block("loop")
    done = func.add_block("done")
    b.br(loop)
    b.set_insert_point(loop)
    i = b.phi(I64, "i")
    i.add_incoming(b.i64(0), entry)
    b.barrier()
    ni = b.add(i, b.i64(1))
    i.add_incoming(ni, loop)
    b.cond_br(b.icmp("slt", ni, b.i64(iterations)), loop, done)
    b.set_insert_point(done)
    b.ret()
    verify_module(module)
    return module


def test_watchdog_aborts_a_long_parallel_launch():
    gpu = VirtualGPU(_barrier_loop_module(500_000))
    with pytest.raises(WatchdogExpired, match="watchdog"):
        gpu.launch("kern", [], 2, 2, sim_jobs=2, watchdog_s=0.05)


def test_watchdog_env_knob_is_honoured(monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_S", "0.05")
    gpu = VirtualGPU(_barrier_loop_module(500_000))
    with pytest.raises(WatchdogExpired):
        gpu.launch("kern", [], 2, 2, sim_jobs=2)


def test_fast_launch_beats_the_watchdog():
    gpu = VirtualGPU(_barrier_loop_module(3))
    profile = gpu.launch("kern", [], 2, 2, sim_jobs=2, watchdog_s=30.0)
    assert profile.cycles > 0


def test_watchdog_aborts_a_long_serial_launch():
    # Regression: the serial (sim_jobs=1) phase driver used to ignore
    # watchdog_s silently; it now polls the same cooperative deadline
    # the parallel driver uses.
    gpu = VirtualGPU(_barrier_loop_module(500_000))
    with pytest.raises(WatchdogExpired, match="watchdog"):
        gpu.launch("kern", [], 2, 2, watchdog_s=0.05)


def test_fast_serial_launch_beats_the_watchdog():
    gpu = VirtualGPU(_barrier_loop_module(3))
    profile = gpu.launch("kern", [], 2, 2, watchdog_s=30.0)
    assert profile.cycles > 0


def test_serial_and_parallel_watchdogs_raise_the_same_type():
    for sim_jobs in (1, 2):
        gpu = VirtualGPU(_barrier_loop_module(500_000))
        with pytest.raises(WatchdogExpired):
            gpu.launch("kern", [], 2, 2, sim_jobs=sim_jobs, watchdog_s=0.02)
