"""Cost model and profiler accounting."""

import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import F64, GlobalVariable, I64, PTR_GLOBAL
from repro.vgpu import GPUConfig, VirtualGPU
from repro.vgpu.config import LaunchConfig
from repro.vgpu.cost import CostModel
from repro.vgpu.profiler import NOMINAL_CLOCK_GHZ, KernelProfile
from tests.conftest import make_kernel


class TestLaunchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 32)
        with pytest.raises(ValueError):
            LaunchConfig(1, 0)
        assert LaunchConfig(4, 32).total_threads == 128


class TestCostModel:
    def test_global_loads_cost_more_than_shared(self):
        model = CostModel(GPUConfig())
        assert model.load_cost(AddressSpace.GLOBAL) > model.load_cost(AddressSpace.SHARED)
        assert model.load_cost(AddressSpace.SHARED) > model.load_cost(AddressSpace.LOCAL)

    def test_intrinsic_costs_from_registry(self):
        model = CostModel(GPUConfig())
        assert model.call_cost("llvm.sqrt.f64") == 12
        assert model.call_cost("llvm.assume") == 0
        assert model.call_cost("user_function") == GPUConfig().call_cost

    def test_float_div_expensive(self, module):
        from repro.ir.instructions import BinOp
        from repro.ir.values import const_float

        model = CostModel(GPUConfig())
        div = BinOp("fdiv", const_float(1.0), const_float(2.0))
        add = BinOp("fadd", const_float(1.0), const_float(2.0))
        assert model.binop_cost(div) > model.binop_cost(add)


class TestProfileAccounting:
    def _profiled(self, module, teams=2, threads=4):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["p"])
        v = b.load(F64, func.args[0])
        b.store(b.fmul(v, b.f64(2.0)), b.ptradd(func.args[0], 8))
        b.ret()
        gpu = VirtualGPU(module)
        import numpy as np

        p = gpu.alloc_array(np.zeros(4))
        return gpu.launch("kern", [p], teams, threads)

    def test_launch_overhead_included(self, module):
        profile = self._profiled(module)
        assert profile.cycles > GPUConfig().launch_overhead

    def test_loads_binned_by_space(self, module):
        profile = self._profiled(module, teams=1, threads=4)
        assert profile.loads_by_space[AddressSpace.GLOBAL] == 4
        assert profile.stores_by_space[AddressSpace.GLOBAL] == 4

    def test_flops_counted(self, module):
        profile = self._profiled(module, teams=1, threads=8)
        assert profile.flops == 8  # one fmul per thread

    def test_gflops_scaling(self):
        p = KernelProfile("k", 1, 1, cycles=1000, flops=500)
        assert p.gflops == pytest.approx(0.5 * NOMINAL_CLOCK_GHZ)

    def test_time_conversions(self):
        p = KernelProfile("k", 1, 1, cycles=int(NOMINAL_CLOCK_GHZ * 1e9))
        assert p.time_seconds == pytest.approx(1.0)
        assert p.time_ms == pytest.approx(1000.0)

    def test_zero_cycles_zero_gflops(self):
        assert KernelProfile("k", 1, 1).gflops == 0.0

    def test_instructions_counted_across_teams(self, module):
        one = self._profiled(module, teams=1, threads=4)

    def test_team_cycles_recorded(self, module):
        profile = self._profiled(module, teams=3, threads=2)
        assert set(profile.team_cycles) == {0, 1, 2}
        assert all(c > 0 for c in profile.team_cycles.values())

    def test_summary_mentions_key_numbers(self, module):
        profile = self._profiled(module)
        text = profile.summary()
        assert str(profile.cycles) in text
        assert "regs" in text


class TestDeviceEnvironment:
    def test_env_written_into_device_global(self, module):
        from repro.ir import I32

        gv = module.add_global(GlobalVariable(
            "__omp_rtl_env_DEBUG", I32, linkage="external"))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        v = b.load(I32, gv)
        b.store(b.sext(v, I64), func.args[0])
        b.ret()
        gpu = VirtualGPU(module, env={"DEBUG": 3})
        import numpy as np

        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == 3

    def test_unknown_env_ignored(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module, env={"NOT_A_THING": 7})
        gpu.launch("kern", [], 1, 1)
