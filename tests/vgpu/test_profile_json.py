"""KernelProfile serialization round-trip and summary shape."""

from __future__ import annotations

import json
from collections import Counter

from repro.memory.addrspace import AddressSpace
from repro.vgpu.profiler import KernelProfile, TeamStats


def _populated_profile() -> KernelProfile:
    p = KernelProfile(kernel_name="k", num_teams=2, threads_per_team=32)
    p.registers = 40
    p.shared_memory_bytes = 512
    p.cycles = 12345
    stats = TeamStats()
    stats.instructions = 100
    stats.opcode_counts.update({"add": 60, "call": 40})
    stats.loads_by_space[AddressSpace.GLOBAL] = 10
    stats.stores_by_space[AddressSpace.SHARED] = 4
    stats.flops = 7
    stats.barriers = 3
    stats.barriers_aligned = 1
    stats.barriers_unaligned = 2
    stats.output.append("hi")
    stats.shared_stack_high_water = 64
    stats.runtime_calls.update({"parallel_region": 2, "worksharing": 5})
    stats.device_mallocs = 1
    stats.device_frees = 1
    stats.function_cycles.update({"k": 900, "helper": 100})
    p.merge_team(0, 6000, stats)
    p.merge_team(1, 6345, TeamStats())
    return p


class TestRoundTrip:
    def test_to_json_from_json_preserves_every_field(self):
        p = _populated_profile()
        q = KernelProfile.from_json(p.to_json())
        assert q == p

    def test_counter_types_restored(self):
        q = KernelProfile.from_json(_populated_profile().to_json())
        assert isinstance(q.opcode_counts, Counter)
        assert isinstance(q.runtime_calls, Counter)
        assert isinstance(q.function_cycles, Counter)

    def test_address_space_keys_restored(self):
        q = KernelProfile.from_json(_populated_profile().to_json())
        assert q.loads_by_space[AddressSpace.GLOBAL] == 10
        assert q.stores_by_space[AddressSpace.SHARED] == 4

    def test_team_cycles_keys_are_ints(self):
        q = KernelProfile.from_json(_populated_profile().to_json())
        assert q.team_cycles == {0: 6000, 1: 6345}

    def test_derived_keys_present_but_ignored_on_load(self):
        p = _populated_profile()
        d = p.to_dict()
        assert d["time_ms"] == p.time_ms
        assert d["gflops"] == p.gflops
        # round-trips even though the dict carries derived keys
        assert KernelProfile.from_dict(d) == p

    def test_json_is_plain_data(self):
        json.loads(_populated_profile().to_json())


class TestOverheadCounters:
    def test_flat_counter_dict(self):
        oc = _populated_profile().overhead_counters()
        assert oc["runtime.parallel_region"] == 2
        assert oc["runtime.worksharing"] == 5
        assert oc["barriers.total"] == 3
        assert oc["barriers.aligned"] == 1
        assert oc["barriers.unaligned"] == 2
        assert oc["shared_stack.high_water_bytes"] == 64
        assert oc["global_fallback.mallocs"] == 1
        assert oc["global_fallback.frees"] == 1


class TestSummary:
    def test_summary_includes_launch_shape_and_time(self):
        p = _populated_profile()
        text = p.summary()
        assert "k[2x32]" in text
        assert str(p.cycles) in text
        assert f"{p.time_ms:.3f} ms" in text
        assert "regs" in text
        assert "512B smem" in text
