"""Register-pressure estimation and static resource accounting."""

import numpy as np

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    ArrayType,
    F64,
    GlobalVariable,
    I64,
    PTR_GLOBAL,
    verify_module,
)
from repro.vgpu.registers import estimate_kernel_registers, max_live_values
from repro.vgpu.resources import (
    measure_resources,
    shared_memory_usage,
    static_instruction_count,
)
from tests.conftest import make_function, make_kernel


class TestMaxLiveValues:
    def test_straight_line_chain_is_narrow(self, module):
        func, b = make_function(module)
        v = func.args[0]
        for _ in range(20):
            v = b.add(v, 1)
        b.ret(v)
        # Chained adds keep only one value live at a time (plus the arg).
        assert max_live_values(func) <= 4

    def test_wide_expression_increases_pressure(self, module):
        func, b = make_function(module)
        vals = [b.mul(func.args[0], i + 2) for i in range(12)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        assert max_live_values(func) >= 12

    def test_loop_carried_values_are_live(self, module):
        func, b = make_function(module)
        entry = b.block
        loop = func.add_block("loop")
        done = func.add_block("done")
        b.br(loop)
        b.set_insert_point(loop)
        phis = []
        for i in range(6):
            phi = b.phi(func.args[0].type, f"p{i}")
            phi.add_incoming(b.i32(i), entry)
            phis.append(phi)
        acc = phis[0]
        for p in phis[1:]:
            acc = b.add(acc, p)
        for phi in phis:
            phi.add_incoming(b.add(phi, 1), loop)
        b.cond_br(b.icmp("slt", acc, b.i32(100)), loop, done)
        b.set_insert_point(done)
        b.ret(acc)
        verify_module(module)
        assert max_live_values(func) >= 6

    def test_removing_loop_reduces_pressure(self, module):
        """The §V-B effect: no back edge -> no loop-carried state."""
        loop_mod = module
        func_loop, b = make_function(loop_mod, "with_loop")
        entry = b.block
        loop = func_loop.add_block("loop")
        done = func_loop.add_block("done")
        b.br(loop)
        b.set_insert_point(loop)
        iv = b.phi(func_loop.args[0].type, "iv")
        iv.add_incoming(b.i32(0), entry)
        body_val = b.mul(iv, 3)
        nxt = b.add(iv, 1)
        iv.add_incoming(nxt, loop)
        b.cond_br(b.icmp("slt", nxt, func_loop.args[0]), loop, done)
        b.set_insert_point(done)
        b.ret(body_val)

        func_flat, b2 = make_function(loop_mod, "without_loop")
        b2.ret(b2.mul(func_flat.args[0], 3))

        assert max_live_values(func_flat) < max_live_values(func_loop)


class TestKernelRegisters:
    def test_callee_pressure_included(self, module):
        heavy, hb = make_function(module, "heavy", ret=I64, params=(I64,))
        vals = [hb.mul(heavy.args[0], i + 2) for i in range(10)]
        acc = vals[0]
        for v in vals[1:]:
            acc = hb.add(acc, v)
        hb.ret(acc)
        kern, kb = make_kernel(module, params=(I64,))
        kb.call(heavy, [kern.args[0]])
        kb.ret()
        verify_module(module)
        regs = estimate_kernel_registers(kern, module)
        assert regs > max_live_values(kern)

    def test_call_depth_penalty(self, module):
        leaf, lb = make_function(module, "leaf", ret=I64, params=(I64,))
        lb.ret(leaf.args[0])
        mid, mb = make_function(module, "mid", ret=I64, params=(I64,))
        mb.ret(mb.call(leaf, [mid.args[0]]))
        kern_deep, kd = make_kernel(module, "deep", params=(I64,))
        kd.call(mid, [kern_deep.args[0]])
        kd.ret()
        kern_flat, kf = make_kernel(module, "flat", params=(I64,))
        kf.ret()
        assert estimate_kernel_registers(kern_deep, module) > \
            estimate_kernel_registers(kern_flat, module)


class TestSharedMemoryAccounting:
    def test_reachable_shared_globals_counted(self, module):
        module.add_global(GlobalVariable(
            "tile", ArrayType(F64, 32), addrspace=AddressSpace.SHARED))
        tile = module.get_global("tile")
        kern, b = make_kernel(module, params=())
        b.store(b.f64(1.0), tile)
        b.ret()
        assert shared_memory_usage(kern, module) == 256

    def test_unreferenced_shared_not_counted(self, module):
        module.add_global(GlobalVariable(
            "unused", ArrayType(F64, 32), addrspace=AddressSpace.SHARED))
        kern, b = make_kernel(module, params=())
        b.ret()
        assert shared_memory_usage(kern, module) == 0

    def test_shared_reached_through_callee(self, module):
        gv = module.add_global(GlobalVariable(
            "deep", I64, addrspace=AddressSpace.SHARED))
        helper, hb = make_function(module, "helper", ret=I64, params=())
        hb.ret(hb.load(I64, gv))
        kern, b = make_kernel(module, params=(PTR_GLOBAL,))
        v = b.call(helper, [])
        b.store(v, kern.args[0])
        b.ret()
        assert shared_memory_usage(kern, module) == 8

    def test_global_memory_not_counted_as_shared(self, module):
        gv = module.add_global(GlobalVariable("gmem", ArrayType(F64, 100)))
        kern, b = make_kernel(module, params=())
        b.load(F64, gv, volatile=True)
        b.ret()
        assert shared_memory_usage(kern, module) == 0

    def test_measure_resources_bundle(self, module):
        kern, b = make_kernel(module, params=(I64,))
        b.add(kern.args[0], 1)
        b.ret()
        res = measure_resources(kern, module)
        assert res.registers > 0
        assert res.instruction_count == static_instruction_count(kern, module)
        assert res.shared_memory_bytes == 0
