"""Warp engine unit tests: the lane-mask machine and its fast paths.

The integration sweep (``tests/integration/test_engine_differential``)
pins whole-app bit-parity; these tests pin the mask machinery on
hand-built kernels where the divergence shape is known exactly —
a split/reconverge diamond, a nested split, an if-converted short
diamond (with the pass forced on and off), a uniform branch that must
never split, and the old-runtime lockstep fallback.
"""

import pytest

from repro.ir import I64, Module, verify_module
from repro.ir.types import I32, IntType
from repro.ir.values import GlobalVariable
from repro.memory.addrspace import AddressSpace
from repro.runtime.state import GV_OLD_TEAM_CONTEXT
from repro.vgpu import VirtualGPU
from repro.vgpu.launchspec import LaunchSpec
from tests.conftest import make_kernel

pytestmark = pytest.mark.warp

PROFILE_FIELDS = (
    "cycles",
    "instructions",
    "opcode_counts",
    "loads_by_space",
    "stores_by_space",
    "flops",
    "barriers",
    "team_cycles",
    "output",
)

N = 16  # one partial warp


def _run(module, engines=("legacy", "warp"), threads=N, configure=None):
    """Launch @kern on a fresh device per engine; return
    {engine: (profile, [out words])} for an i64[threads] out buffer."""
    out = {}
    for engine in engines:
        gpu = VirtualGPU(module, engine=engine)
        if configure is not None:
            configure(gpu)
        buf = gpu.alloc_bytes(8 * threads)
        result = gpu.run(LaunchSpec(
            kernel="kern", num_teams=1, threads_per_team=threads,
            args=(buf, 0),
        ))
        words = [gpu.read_scalar(buf + 8 * i, I64) for i in range(threads)]
        out[engine] = (result.profile, words)
    return out


def _assert_engines_agree(results):
    (ref_prof, ref_words) = results["legacy"]
    for engine, (prof, words) in results.items():
        if engine == "legacy":
            continue
        assert words == ref_words, f"{engine}: memory differs"
        for field in PROFILE_FIELDS:
            assert getattr(prof, field) == getattr(ref_prof, field), (
                f"{engine}: {field} differs"
            )


def _store_at_tid(b, base, tid, value):
    slot = b.ptradd(base, b.mul(tid, b.i64(8)))
    b.store(value, slot)


def _diamond_module(*, widen=False):
    """tid < 8 ? tid * 3 : tid + 100, stored per lane, then a
    reconverged tail store all lanes execute.  ``widen`` pads the arms
    past the if-conversion size limit so the split path runs."""
    module = Module("m")
    func, b = make_kernel(module)
    base, _ = func.args
    tid = b.sext(b.thread_id(), I64)
    then_b = func.add_block("then")
    else_b = func.add_block("else")
    join_b = func.add_block("join")
    b.cond_br(b.icmp("slt", tid, b.i64(8)), then_b, else_b)

    b.set_insert_point(then_b)
    t_val = b.mul(tid, b.i64(3))
    if widen:
        for _ in range(40):
            t_val = b.add(t_val, b.i64(1))
    b.br(join_b)
    b.set_insert_point(else_b)
    f_val = b.add(tid, b.i64(100))
    if widen:
        for _ in range(40):
            f_val = b.add(f_val, b.i64(1))
    b.br(join_b)

    b.set_insert_point(join_b)
    phi = b.phi(I64, "v")
    phi.add_incoming(t_val, then_b)
    phi.add_incoming(f_val, else_b)
    _store_at_tid(b, base, tid, phi)
    b.ret()
    verify_module(module)
    return module


def test_divergent_diamond_reconverges():
    """Split path: both sides run under disjoint masks and the join
    block executes once for all lanes — bit-parity with legacy."""
    _assert_engines_agree(_run(_diamond_module(widen=True)))


def test_if_converted_diamond_matches_split_execution():
    """The same short diamond must be bit-identical whether the
    if-conversion pass predicates it or the mask machine splits it."""
    module = _diamond_module()
    on = _run(module)
    off = _run(
        _diamond_module(),
        configure=lambda gpu: setattr(gpu, "warp_if_convert", False),
    )
    _assert_engines_agree(on)
    _assert_engines_agree(off)
    assert on["warp"][1] == off["warp"][1]
    assert on["warp"][0].opcode_counts == off["warp"][0].opcode_counts


def test_nested_divergence():
    """Two nested data-dependent branches: reconvergence must unwind
    innermost-first (the reconvergence-stack invariant)."""
    module = Module("m")
    func, b = make_kernel(module)
    base, _ = func.args
    tid = b.sext(b.thread_id(), I64)
    outer_t = func.add_block("outer_t")
    inner_t = func.add_block("inner_t")
    inner_f = func.add_block("inner_f")
    inner_j = func.add_block("inner_j")
    outer_f = func.add_block("outer_f")
    join = func.add_block("join")
    b.cond_br(b.icmp("slt", tid, b.i64(12)), outer_t, outer_f)

    b.set_insert_point(outer_t)
    b.cond_br(b.icmp("slt", tid, b.i64(4)), inner_t, inner_f)
    b.set_insert_point(inner_t)
    a_val = b.mul(tid, b.i64(7))
    b.br(inner_j)
    b.set_insert_point(inner_f)
    b_val = b.add(tid, b.i64(50))
    b.br(inner_j)
    b.set_insert_point(inner_j)
    inner_phi = b.phi(I64)
    inner_phi.add_incoming(a_val, inner_t)
    inner_phi.add_incoming(b_val, inner_f)
    b.br(join)

    b.set_insert_point(outer_f)
    c_val = b.sub(b.i64(0), tid)
    b.br(join)

    b.set_insert_point(join)
    phi = b.phi(I64)
    phi.add_incoming(inner_phi, inner_j)
    phi.add_incoming(c_val, outer_f)
    _store_at_tid(b, base, tid, phi)
    b.ret()
    verify_module(module)
    _assert_engines_agree(_run(module))


def test_uniform_branch_takes_the_fast_path():
    """A branch on a uniform value never splits: the warp engine's
    cycle/step accounting must equal legacy's exactly (a split would
    re-execute the join-side bookkeeping per side)."""
    module = Module("m")
    func, b = make_kernel(module)
    base, n = func.args
    tid = b.sext(b.thread_id(), I64)
    then_b = func.add_block("then")
    else_b = func.add_block("else")
    join_b = func.add_block("join")
    # n is a launch argument — the same scalar for every lane.
    b.cond_br(b.icmp("eq", n, b.i64(0)), then_b, else_b)
    b.set_insert_point(then_b)
    t_val = b.mul(tid, b.i64(2))
    b.br(join_b)
    b.set_insert_point(else_b)
    f_val = b.i64(0)
    b.br(join_b)
    b.set_insert_point(join_b)
    phi = b.phi(I64)
    phi.add_incoming(t_val, then_b)
    phi.add_incoming(f_val, else_b)
    _store_at_tid(b, base, tid, phi)
    b.ret()
    verify_module(module)
    # Disable if-conversion so a non-uniform handling bug could not
    # hide behind predication.
    _assert_engines_agree(_run(
        module,
        configure=lambda gpu: setattr(gpu, "warp_if_convert", False),
    ))


def test_divergent_loop_trip_counts():
    """Lanes leave a loop at different trip counts; late lanes keep
    iterating under a shrinking mask."""
    module = Module("m")
    func, b = make_kernel(module)
    base, _ = func.args
    tid = b.sext(b.thread_id(), I64)
    head = func.add_block("head")
    body = func.add_block("body")
    exit_b = func.add_block("exit")
    entry = b.block
    b.br(head)

    b.set_insert_point(head)
    acc = b.phi(I64, "acc")
    i = b.phi(I64, "i")
    b.cond_br(b.icmp("sle", i, tid), body, exit_b)

    b.set_insert_point(body)
    acc2 = b.add(acc, i)
    i2 = b.add(i, b.i64(1))
    b.br(head)
    acc.add_incoming(b.i64(0), entry)
    acc.add_incoming(acc2, body)
    i.add_incoming(b.i64(0), entry)
    i.add_incoming(i2, body)

    b.set_insert_point(exit_b)
    _store_at_tid(b, base, tid, acc)
    b.ret()
    verify_module(module)
    _assert_engines_agree(_run(module))


def test_old_runtime_module_falls_back_to_decoded():
    """A module carrying the old runtime's team context is not
    lockstep-safe; the warp engine must run it on the decoded scalar
    path and stay bit-identical."""
    module = _diamond_module()
    module.add_global(GlobalVariable(
        GV_OLD_TEAM_CONTEXT, IntType(64), addrspace=AddressSpace.SHARED,
    ))
    gpu = VirtualGPU(module, engine="warp")
    assert gpu._warp_lockstep_ok is False
    _assert_engines_agree(_run(module, engines=("legacy", "decoded", "warp")))
