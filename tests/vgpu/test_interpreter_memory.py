"""Interpreter memory semantics: address spaces, atomics, mem intrinsics."""

import numpy as np
import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import (
    F64,
    GlobalVariable,
    I32,
    I64,
    PTR_GLOBAL,
    verify_module,
)
from repro.vgpu import VirtualGPU
from tests.conftest import make_kernel


class TestSharedMemory:
    def test_shared_global_is_team_private(self, module):
        gv = module.add_global(GlobalVariable("tile", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        bid = b.block_id()
        # Each team writes its own id into the shared slot, reads it back.
        b.store(b.sext(bid, I64), gv)
        v = b.load(I64, gv)
        b.store(v, b.array_gep(func.args[0], I64, b.sext(bid, I64)))
        b.ret()
        verify_module(module)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(4, dtype=np.int64))
        gpu.launch("kern", [out], 4, 1)
        assert list(gpu.read_array(out, np.int64, 4)) == [0, 1, 2, 3]

    def test_shared_zero_initialized_per_team(self, module):
        gv = module.add_global(GlobalVariable("slot", I64, addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        v = b.load(I64, gv)
        bid = b.sext(b.block_id(), I64)
        b.store(v, b.array_gep(func.args[0], I64, bid))
        b.store(b.i64(99), gv)
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.full(2, -1, dtype=np.int64))
        gpu.launch("kern", [out], 2, 1)
        assert list(gpu.read_array(out, np.int64, 2)) == [0, 0]

    def test_shared_initializer_applied_per_team(self, module):
        from repro.ir import Constant

        gv = module.add_global(GlobalVariable(
            "init", I64, addrspace=AddressSpace.SHARED,
            initializer=[Constant(I64, 7)]))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        v = b.load(I64, gv)
        bid = b.sext(b.block_id(), I64)
        b.store(v, b.array_gep(func.args[0], I64, bid))
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(3, dtype=np.int64))
        gpu.launch("kern", [out], 3, 1)
        assert list(gpu.read_array(out, np.int64, 3)) == [7, 7, 7]


class TestAlloca:
    def test_alloca_is_thread_private(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        slot = b.alloca(I64)
        tid = b.sext(b.thread_id(), I64)
        b.store(tid, slot)
        b.aligned_barrier()  # other threads' allocas must not interfere
        v = b.load(I64, slot)
        b.store(v, b.array_gep(func.args[0], I64, tid))
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(8, dtype=np.int64))
        gpu.launch("kern", [out], 1, 8)
        assert list(gpu.read_array(out, np.int64, 8)) == list(range(8))


class TestAtomics:
    def test_atomic_add_accumulates_across_threads(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["counter"])
        b.atomic_rmw("add", func.args[0], b.i64(1))
        b.ret()
        gpu = VirtualGPU(module)
        counter = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [counter], 4, 16)
        assert gpu.read_array(counter, np.int64, 1)[0] == 64

    def test_atomic_returns_old_value(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL, PTR_GLOBAL),
                              arg_names=["counter", "olds"])
        old = b.atomic_rmw("add", func.args[0], b.i64(1))
        tid = b.sext(b.thread_id(), I64)
        b.store(old, b.array_gep(func.args[1], I64, tid))
        b.ret()
        gpu = VirtualGPU(module)
        counter = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        olds = gpu.alloc_array(np.zeros(8, dtype=np.int64))
        gpu.launch("kern", [counter, olds], 1, 8)
        assert sorted(gpu.read_array(olds, np.int64, 8)) == list(range(8))

    def test_atomic_max(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["m"])
        tid = b.sext(b.thread_id(), I64)
        b.atomic_rmw("max", func.args[0], tid)
        b.ret()
        gpu = VirtualGPU(module)
        m = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [m], 1, 8)
        assert gpu.read_array(m, np.int64, 1)[0] == 7

    def test_atomic_float_add(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["acc"])
        b.atomic_rmw("add", func.args[0], b.f64(0.5))
        b.ret()
        gpu = VirtualGPU(module)
        acc = gpu.alloc_array(np.zeros(1))
        gpu.launch("kern", [acc], 2, 4)
        assert gpu.read_array(acc, np.float64, 1)[0] == 4.0


class TestMemIntrinsics:
    def test_memset_and_memcpy(self, module):
        from repro.ir import Constant, I8, PTR

        func, b = make_kernel(module, params=(PTR_GLOBAL, PTR_GLOBAL),
                              arg_names=["a", "c"])
        a_ptr = b.cast("bitcast", func.args[0], PTR)
        c_ptr = b.cast("bitcast", func.args[1], PTR)
        b.intrinsic("llvm.memset", [a_ptr, Constant(I8, 0x2A), b.i64(16)])
        b.intrinsic("llvm.memcpy", [c_ptr, a_ptr, b.i64(16)])
        b.ret()
        gpu = VirtualGPU(module)
        a = gpu.alloc_bytes(16)
        c = gpu.alloc_bytes(16)
        gpu.launch("kern", [a, c], 1, 1)
        assert gpu.memory.read_raw(c, 16) == b"\x2a" * 16

    def test_device_malloc(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        buf = b.intrinsic("malloc", [b.i64(8)], "buf")
        b.store(b.i64(77), buf)
        v = b.load(I64, buf)
        b.store(v, func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == 77


class TestHostInterop:
    def test_alloc_and_read_array_roundtrip(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module)
        data = np.arange(37, dtype=np.float64) * 1.5
        ptr = gpu.alloc_array(data)
        assert np.array_equal(gpu.read_array(ptr, np.float64, 37), data)

    def test_scalar_io(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module)
        ptr = gpu.alloc_bytes(8)
        gpu.write_scalar(ptr, 1.25, F64)
        assert gpu.read_scalar(ptr, F64) == 1.25
