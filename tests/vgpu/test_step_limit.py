"""S2: step-limit accounting is pinned and engine-identical.

A runaway thread must be stopped after *exactly*
``max_steps_per_thread`` retired steps by both engines, with the same
frozen message and the same ``steps`` count in the attached context —
drift here would make StepLimitExceeded CrashReports engine-dependent.
"""

import pytest

from repro.ir import I64, Module, verify_module
from repro.vgpu import GPUConfig, StepLimitExceeded, VirtualGPU
from repro.vgpu.config import ENGINES
from tests.conftest import make_kernel

LIMIT = 64


def _spin_module():
    """kern(): an infinite counting loop."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    entry = b.block
    loop = func.add_block("loop")
    b.br(loop)
    b.set_insert_point(loop)
    i = b.phi(I64, "i")
    i.add_incoming(b.i64(0), entry)
    ni = b.add(i, b.i64(1))
    i.add_incoming(ni, loop)
    b.br(loop)
    verify_module(module)
    return module


def _limit_hit(engine, sim_jobs=None, teams=1):
    gpu = VirtualGPU(_spin_module(),
                     config=GPUConfig(max_steps_per_thread=LIMIT),
                     engine=engine)
    with pytest.raises(StepLimitExceeded) as excinfo:
        gpu.launch("kern", [], teams, 1, sim_jobs=sim_jobs)
    return excinfo.value


def test_message_and_steps_are_engine_identical():
    results = [_limit_hit(engine) for engine in ENGINES]
    messages = {str(e) for e in results}
    assert messages == {
        f"thread (0,0) exceeded {LIMIT} steps in @kern"}
    contexts = [e.context.to_dict() for e in results]
    assert contexts[0] == contexts[1]
    # The pin: the thread retired exactly LIMIT steps, in both engines.
    assert contexts[0]["steps"] == LIMIT
    assert contexts[0]["block"] == "loop"


def test_parallel_simulation_reports_the_same_limit():
    serial = _limit_hit("decoded", teams=2)
    parallel = _limit_hit("decoded", teams=2, sim_jobs=2)
    assert str(serial) == str(parallel)
    assert serial.context.to_dict() == parallel.context.to_dict()
