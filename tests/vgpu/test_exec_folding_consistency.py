"""Compile-time folding must agree with runtime execution.

Random constant expressions are built twice: once with the folding
builder (which reduces them at construction) and once shielded from
folding behind kernel arguments.  Both must produce identical runtime
results — any divergence is a miscompile in either the folder or the
interpreter.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ir import Constant, I64, Module, PTR_GLOBAL, verify_module
from repro.vgpu import VirtualGPU
from tests.conftest import make_kernel

OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr",
       "sdiv", "udiv", "srem", "urem"]


@st.composite
def const_expr(draw, depth=3):
    """Returns a nested (op, lhs, rhs) tree over small i64 constants."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.integers(min_value=-50, max_value=50))
    op = draw(st.sampled_from(OPS))
    lhs = draw(const_expr(depth=depth - 1))
    rhs = draw(const_expr(depth=depth - 1))
    return (op, lhs, rhs)


def build_expr(b, tree, opaque):
    """Build the tree; `opaque(v)` wraps leaves to block/allow folding."""
    if isinstance(tree, int):
        return opaque(tree)
    op, lhs, rhs = tree
    lv = build_expr(b, tree[1], opaque)
    rv = build_expr(b, tree[2], opaque)
    try:
        return b._binop(op, lv, rv, "")
    except Exception:
        # Division by a (possibly folded) zero constant etc.
        raise


def run_kernel(module, extra_args):
    gpu = VirtualGPU(module)
    out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
    gpu.launch("kern", [out, *extra_args], 1, 1)
    return gpu.read_array(out, np.int64, 1)[0]


class TestFoldingConsistency:
    @settings(max_examples=80, deadline=None)
    @given(const_expr())
    def test_folded_equals_interpreted(self, tree):
        from repro.vgpu.errors import TrapError

        # Build 1: leaves as constants -> builder folds aggressively.
        m1 = Module("folded")
        func1, b1 = make_kernel(m1, params=(PTR_GLOBAL,), arg_names=["out"])
        try:
            v1 = build_expr(b1, tree, lambda c: b1.i64(c))
        except Exception:
            assume(False)
        b1.store(v1, func1.args[0])
        b1.ret()
        verify_module(m1)

        # Build 2: leaves as kernel arguments -> nothing folds.
        leaves = []

        def collect(t):
            if isinstance(t, int):
                leaves.append(t)
            else:
                collect(t[1])
                collect(t[2])

        collect(tree)
        m2 = Module("opaque")
        func2, b2 = make_kernel(
            m2, params=(PTR_GLOBAL,) + (I64,) * len(leaves),
            arg_names=["out"] + [f"c{i}" for i in range(len(leaves))])
        it = iter(func2.args[1:])
        v2 = build_expr(b2, tree, lambda c: next(it))
        b2.store(v2, func2.args[0])
        b2.ret()
        verify_module(m2)

        try:
            r2 = run_kernel(m2, leaves)
        except TrapError:
            assume(False)  # division by zero at runtime: skip the case
            return
        r1 = run_kernel(m1, [])
        assert r1 == r2, f"folded={r1} interpreted={r2} for {tree}"
