"""§III-D dynamic shared memory: launch-time sizing."""

import numpy as np
import pytest

from repro.ir import I64, PTR_GLOBAL, verify_module
from repro.vgpu import SimulationError, VirtualGPU
from tests.conftest import make_kernel


def staging_kernel(module):
    """Each thread writes tid*3 to its dynamic-shared slot, barriers,
    then reads its neighbour's slot."""
    func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
    base = b.intrinsic("gpu.dynamic_shared", [], "dyn")
    tid = b.sext(b.thread_id(), I64)
    b.store(b.mul(tid, b.i64(3)), b.array_gep(base, I64, tid))
    b.aligned_barrier()
    nbr = b.srem(b.add(tid, b.i64(1)), b.i64(8))
    v = b.load(I64, b.array_gep(base, I64, nbr))
    b.store(v, b.array_gep(func.args[0], I64, tid))
    b.ret()
    verify_module(module)
    return func


class TestDynamicShared:
    def test_cross_thread_staging(self, module):
        staging_kernel(module)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(8, dtype=np.int64))
        gpu.launch("kern", [out], 1, 8, dynamic_shared_bytes=64)
        got = list(gpu.read_array(out, np.int64, 8))
        assert got == [((t + 1) % 8) * 3 for t in range(8)]

    def test_per_team_isolation(self, module):
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        base = b.intrinsic("gpu.dynamic_shared", [], "dyn")
        bid = b.sext(b.block_id(), I64)
        b.store(bid, base)
        v = b.load(I64, base)
        b.store(v, b.array_gep(func.args[0], I64, bid))
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(3, dtype=np.int64))
        gpu.launch("kern", [out], 3, 1, dynamic_shared_bytes=16)
        assert list(gpu.read_array(out, np.int64, 3)) == [0, 1, 2]

    def test_unreserved_use_is_an_error(self, module):
        staging_kernel(module)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(8, dtype=np.int64))
        with pytest.raises(SimulationError, match="dynamic shared"):
            gpu.launch("kern", [out], 1, 8)  # no dynamic_shared_bytes

    def test_does_not_overlap_static_shared(self, module):
        from repro.memory.addrspace import AddressSpace, pointer_offset
        from repro.ir import ArrayType, F64, GlobalVariable

        module.add_global(GlobalVariable(
            "static_tile", ArrayType(F64, 16), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        base = b.intrinsic("gpu.dynamic_shared", [], "dyn")
        gv_addr = b.cast("ptrtoint", module.get_global("static_tile"), I64)
        dyn_addr = b.cast("ptrtoint", base, I64)
        b.store(b.sub(dyn_addr, gv_addr), func.args[0])
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1, dynamic_shared_bytes=32)
        gap = gpu.read_array(out, np.int64, 1)[0]
        assert gap >= 16 * 8  # dynamic region starts after the static tile
