"""Barrier semantics: team synchronization, divergence, timing phases."""

import numpy as np
import pytest

from repro.memory.addrspace import AddressSpace
from repro.ir import ArrayType, GlobalVariable, I64, PTR_GLOBAL
from repro.vgpu import DivergenceError, StepLimitExceeded, VirtualGPU
from repro.vgpu.config import GPUConfig
from tests.conftest import make_kernel


class TestBarrierSynchronization:
    def test_barrier_publishes_shared_writes(self, module):
        """Classic tile pattern: each thread writes its slot, barrier,
        then reads a neighbour's slot."""
        tile = module.add_global(GlobalVariable(
            "tile", ArrayType(I64, 16), addrspace=AddressSpace.SHARED))
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["out"])
        tid = b.sext(b.thread_id(), I64)
        b.store(b.mul(tid, b.i64(10)), b.array_gep(tile, I64, tid))
        b.aligned_barrier()
        nbr = b.srem(b.add(tid, b.i64(1)), b.i64(16))
        v = b.load(I64, b.array_gep(tile, I64, nbr))
        b.store(v, b.array_gep(func.args[0], I64, tid))
        b.ret()
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(16, dtype=np.int64))
        gpu.launch("kern", [out], 1, 16)
        expected = [((t + 1) % 16) * 10 for t in range(16)]
        assert list(gpu.read_array(out, np.int64, 16)) == expected

    def test_barriers_counted_per_team(self, module):
        func, b = make_kernel(module, params=())
        b.aligned_barrier()
        b.aligned_barrier()
        b.ret()
        gpu = VirtualGPU(module)
        profile = gpu.launch("kern", [], 3, 4)
        assert profile.barriers == 6  # 2 barriers x 3 teams

    def test_threads_that_exited_do_not_block_barrier(self, module):
        """Threads returning early must not deadlock the rest."""
        func, b = make_kernel(module, params=())
        tid = b.thread_id()
        early = func.add_block("early")
        work = func.add_block("work")
        b.cond_br(b.icmp("eq", tid, b.i32(0)), early, work)
        b.set_insert_point(early)
        b.ret()
        b.set_insert_point(work)
        b.barrier()  # unaligned: only surviving threads participate
        b.ret()
        gpu = VirtualGPU(module)
        profile = gpu.launch("kern", [], 1, 4)
        assert profile.barriers == 1


class TestDivergenceDetection:
    def _divergent_module(self, module):
        func, b = make_kernel(module, params=())
        tid = b.thread_id()
        a = func.add_block("a")
        c = func.add_block("c")
        merge = func.add_block("merge")
        b.cond_br(b.icmp("eq", tid, b.i32(0)), a, c)
        b.set_insert_point(a)
        b.aligned_barrier()
        b.br(merge)
        b.set_insert_point(c)
        b.aligned_barrier()
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        return func

    def test_divergent_aligned_barrier_raises_in_debug(self, module):
        self._divergent_module(module)
        gpu = VirtualGPU(module, debug_checks=True)
        with pytest.raises(DivergenceError):
            gpu.launch("kern", [], 1, 4)

    def test_divergent_aligned_barrier_tolerated_in_release(self, module):
        self._divergent_module(module)
        gpu = VirtualGPU(module, debug_checks=False)
        gpu.launch("kern", [], 1, 4)  # UB on hardware; simulator proceeds

    def test_unaligned_barriers_may_diverge(self, module):
        func, b = make_kernel(module, params=())
        tid = b.thread_id()
        a = func.add_block("a")
        c = func.add_block("c")
        merge = func.add_block("merge")
        b.cond_br(b.icmp("eq", tid, b.i32(0)), a, c)
        b.set_insert_point(a)
        b.barrier()
        b.br(merge)
        b.set_insert_point(c)
        b.barrier()
        b.br(merge)
        b.set_insert_point(merge)
        b.ret()
        gpu = VirtualGPU(module, debug_checks=True)
        gpu.launch("kern", [], 1, 4)  # fine: generic barriers


class TestLivelockGuard:
    def test_infinite_loop_hits_step_limit(self, module):
        func, b = make_kernel(module, params=())
        spin = func.add_block("spin")
        b.br(spin)
        b.set_insert_point(spin)
        b.br(spin)
        gpu = VirtualGPU(module, config=GPUConfig(max_steps_per_thread=10_000))
        with pytest.raises(StepLimitExceeded):
            gpu.launch("kern", [], 1, 2)


class TestPhaseTiming:
    def test_team_time_is_max_of_threads_per_phase(self, module):
        """One slow thread dominates the phase; work does not add up."""
        func, b = make_kernel(module, params=(PTR_GLOBAL,), arg_names=["data"])
        tid = b.thread_id()
        heavy = func.add_block("heavy")
        join = func.add_block("join")
        b.cond_br(b.icmp("eq", tid, b.i32(0)), heavy, join)
        b.set_insert_point(heavy)
        # thread 0 does 100 global loads
        loop = func.add_block("loop")
        b.br(loop)
        b.set_insert_point(loop)
        iv = b.phi(I64, "iv")
        iv.add_incoming(b.i64(0), heavy)
        b.load(I64, b.array_gep(func.args[0], I64, iv), volatile=True)
        nxt = b.add(iv, b.i64(1))
        iv.add_incoming(nxt, loop)
        b.cond_br(b.icmp("slt", nxt, b.i64(100)), loop, join)
        b.set_insert_point(join)
        b.ret()
        gpu = VirtualGPU(module)
        data = gpu.alloc_array(np.zeros(128, dtype=np.int64))
        one_thread = gpu.launch("kern", [data], 1, 1).team_cycles[0]
        gpu2 = VirtualGPU(module)
        data2 = gpu2.alloc_array(np.zeros(128, dtype=np.int64))
        many = gpu2.launch("kern", [data2], 1, 32).team_cycles[0]
        # 31 idle threads add only epsilon (their branch), not 32x.
        assert many < one_thread * 1.5

    def test_wave_model_sums_over_sm_batches(self, module):
        func, b = make_kernel(module, params=())
        b.aligned_barrier()
        b.ret()
        config = GPUConfig(num_sms=2)
        gpu = VirtualGPU(module, config=config)
        t2 = gpu.launch("kern", [], 2, 4).cycles
        t4 = gpu.launch("kern", [], 4, 4).cycles
        # 4 teams on 2 SMs = 2 waves: roughly double the team time.
        assert t4 > t2
