"""S1: both engines raise bit-identical errors.

Every device failure mode must produce the same exception type, the
same frozen message (formatted by the factory helpers in
``repro.vgpu.errors``), and the same attached
:class:`DeviceErrorContext` under the legacy tree-walker and the
decoded engine — the invariant CrashReport determinism builds on.
"""

import pytest

from repro.ir import I64, Module, PTR_GLOBAL, verify_module
from repro.vgpu import (
    AssumptionViolation,
    CallStackOverflow,
    TrapError,
    VirtualGPU,
)
from repro.vgpu.config import ENGINES
from tests.conftest import make_function, make_kernel


def _fail_both(build_module, *, debug_checks=False, args=()):
    """Run the module under every engine; return [(exc, context_dict)]."""
    out = []
    for engine in ENGINES:
        module = build_module()
        gpu = VirtualGPU(module, engine=engine, debug_checks=debug_checks)
        with pytest.raises(Exception) as excinfo:
            gpu.launch("kern", list(args), 1, 1)
        exc = excinfo.value
        context = exc.context.to_dict() if exc.context is not None else None
        out.append((exc, context))
    return out


def _assert_unified(results, expected_type, message_contains):
    exc_a, ctx_a = results[0]
    assert type(exc_a) is expected_type
    assert message_contains in str(exc_a)
    assert ctx_a is not None and ctx_a["function"] == "kern"
    for exc_b, ctx_b in results[1:]:
        assert type(exc_b) is expected_type
        assert str(exc_a) == str(exc_b)
        assert ctx_a == ctx_b


def test_division_by_zero():
    def build():
        module = Module("m")
        func, b = make_kernel(module, params=(I64,))
        b.sdiv(b.i64(1), func.args[0])
        b.ret()
        verify_module(module)
        return module

    _assert_unified(_fail_both(build, args=(0,)),
                    TrapError, "integer division by zero")


def test_unreachable():
    def build():
        module = Module("m")
        func, b = make_kernel(module, params=())
        b.unreachable()
        verify_module(module)
        return module

    _assert_unified(_fail_both(build), TrapError,
                    "unreachable executed in @kern (team 0, thread 0)")


def test_trap_intrinsic():
    def build():
        module = Module("m")
        func, b = make_kernel(module, params=())
        b.intrinsic("llvm.trap")
        b.ret()
        verify_module(module)
        return module

    _assert_unified(_fail_both(build), TrapError,
                    "trap in @kern (team 0, thread 0)")


def test_assumption_violation_in_debug_mode():
    def build():
        module = Module("m")
        func, b = make_kernel(module, params=(I64,))
        b.assume(b.icmp("eq", func.args[0], b.i64(1)))
        b.ret()
        verify_module(module)
        return module

    _assert_unified(_fail_both(build, debug_checks=True, args=(0,)),
                    AssumptionViolation,
                    "assumption violated in @kern (team 0, thread 0)")


def test_call_stack_overflow():
    def build():
        module = Module("m")
        rec, rb = make_function(module, name="rec", ret=I64, params=(I64,))
        rb.ret(rb.call(rec, [rb.add(rec.args[0], rb.i64(1))]))
        func, b = make_kernel(module, params=())
        b.call(rec, [b.i64(0)])
        b.ret()
        verify_module(module)
        return module

    results = _fail_both(build)
    exc_a, ctx_a = results[0]
    assert "call stack overflow in @rec (team 0, thread 0)" in str(exc_a)
    # The context names the innermost frame and a 512-deep device stack.
    assert ctx_a["function"] == "rec"
    assert len(ctx_a["call_stack"]) > 500
    for exc_b, ctx_b in results[1:]:
        assert type(exc_a) is type(exc_b) is CallStackOverflow
        assert str(exc_a) == str(exc_b)
        assert ctx_a == ctx_b


def test_context_carries_the_device_output_tail():
    def build():
        module = Module("m")
        func, b = make_kernel(module, params=())
        for i in range(12):
            b.intrinsic("rt.print_i64", [b.i64(i)])
        b.unreachable()
        verify_module(module)
        return module

    results = _fail_both(build)
    ctx_a = results[0][1]
    for _, ctx_b in results[1:]:
        assert ctx_a == ctx_b
    # OUTPUT_TAIL_LINES == 8: the tail keeps the *last* prints.
    assert ctx_a["output_tail"] == [str(i) for i in range(4, 12)]
