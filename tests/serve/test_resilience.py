"""Resilience primitives and their service integration.

Units for :mod:`repro.serve.resilience` (deadline arithmetic, retry
backoff determinism, breaker state machine, drain-rate hints), then the
end-to-end promises: queue/compile expiry sheds structured
``DeadlineExceeded`` before wasting a worker, the *remaining* budget
becomes the device watchdog, the retry policy generalizes the old
one-shot decoded→legacy fallback, and consecutive internal failures
open a per-program circuit that half-opens on the probe schedule.
"""

import threading
import time

import pytest

from repro.serve import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    DrainRateTracker,
    LaunchSpec,
    RetryPolicy,
    SimulationService,
)
from repro.serve.resilience import (
    BreakerOpenSignal,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    clamp_watchdog,
)
from repro.ir import Module, verify_module
from tests.conftest import make_kernel

pytestmark = pytest.mark.serve


def _noop_module():
    module = Module("m")
    _, b = make_kernel(module, params=())
    b.ret()
    verify_module(module)
    return module


class TestDeadline:
    def test_budget_arithmetic(self):
        d = Deadline(10.0, start_s=time.monotonic() - 4.0)
        assert 3.9 < d.elapsed_s() < 4.5
        assert 5.5 < d.remaining_s() < 6.1
        assert not d.expired()

    def test_expiry_and_clamped_remaining(self):
        d = Deadline(1.0, start_s=time.monotonic() - 2.0)
        assert d.expired()
        assert d.remaining_s() == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_s"):
            Deadline(-0.1)

    def test_combine_picks_the_tightest(self):
        now = time.monotonic()
        loose = Deadline(10.0, start_s=now)
        tight = Deadline(1.0, start_s=now)
        assert Deadline.combine(loose, tight) is tight
        assert Deadline.combine(None, loose, None) is loose
        assert Deadline.combine(None, None) is None

    def test_combine_accounts_for_start_times(self):
        # A 5s budget started 4.5s ago is tighter than a fresh 2s one.
        old = Deadline(5.0, start_s=time.monotonic() - 4.5)
        fresh = Deadline(2.0)
        assert Deadline.combine(old, fresh) is old


class TestClampWatchdog:
    def test_no_deadline_passes_watchdog_through(self):
        assert clamp_watchdog(3.0, None) == 3.0
        assert clamp_watchdog(None, None) is None

    def test_remaining_budget_wins_when_tighter(self):
        d = Deadline(10.0, start_s=time.monotonic() - 9.0)
        assert clamp_watchdog(5.0, d) < 1.5

    def test_watchdog_wins_when_tighter(self):
        assert clamp_watchdog(0.5, Deadline(100.0)) == 0.5

    def test_deadline_replaces_disabled_watchdog(self):
        clamped = clamp_watchdog(None, Deadline(2.0))
        assert clamped is not None and 0 < clamped <= 2.0
        assert clamp_watchdog(0, Deadline(2.0)) > 0

    def test_spent_budget_stays_positive(self):
        # 0 would mean "watchdog disabled" — a spent deadline must trip
        # the run immediately instead.
        spent = Deadline(0.1, start_s=time.monotonic() - 1.0)
        assert clamp_watchdog(None, spent) == pytest.approx(1e-3)


class TestRetryPolicy:
    def test_default_matches_legacy_one_shot_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 2
        assert policy.delay_s(1, "r000001") == 0.0  # no sleep by default

    def test_should_retry_honours_attempt_budget_and_classes(self):
        policy = RetryPolicy(max_attempts=3, retryable=(RuntimeError,))
        assert policy.should_retry(RuntimeError("x"), 1)
        assert policy.should_retry(RuntimeError("x"), 2)
        assert not policy.should_retry(RuntimeError("x"), 3)
        assert not policy.should_retry(KeyError("x"), 1)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=9, backoff_base_s=0.1,
                             backoff_cap_s=0.5, jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)
        assert policy.delay_s(4) == pytest.approx(0.5)  # capped
        assert policy.delay_s(8) == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.1, jitter=0.5)
        a = policy.delay_s(1, "r000001")
        assert a == policy.delay_s(1, "r000001")  # replayable
        assert a != policy.delay_s(1, "r000002")  # spread across requests
        assert a != policy.delay_s(2, "r000001")  # and across attempts
        assert 0.05 <= a <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_base_s=-1)


class TestCircuitBreaker:
    POLICY = BreakerPolicy(threshold=3, cooldown_s=0.05)

    def test_closed_below_threshold(self):
        brk = CircuitBreaker("k", self.POLICY)
        assert not brk.record_failure()
        assert not brk.record_failure()
        assert brk.state() == STATE_CLOSED
        brk.admit()  # no raise

    def test_opens_at_threshold_and_sheds(self):
        brk = CircuitBreaker("k", self.POLICY)
        brk.record_failure()
        brk.record_failure()
        assert brk.record_failure()  # the opening transition
        assert brk.state() == STATE_OPEN and brk.opens == 1
        with pytest.raises(BreakerOpenSignal) as excinfo:
            brk.admit()
        sig = excinfo.value
        assert sig.key == "k" and sig.failures == 3
        assert sig.retry_after_s is not None and sig.retry_after_s > 0

    def test_success_resets_the_failure_streak(self):
        brk = CircuitBreaker("k", self.POLICY)
        brk.record_failure()
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        brk.record_failure()
        assert brk.state() == STATE_CLOSED  # streak broken, not cumulative

    def test_half_open_admits_one_probe(self):
        brk = CircuitBreaker("k", self.POLICY)
        for _ in range(3):
            brk.record_failure()
        time.sleep(self.POLICY.cooldown_s * 1.5)
        brk.admit()  # the probe
        assert brk.state() == STATE_HALF_OPEN
        with pytest.raises(BreakerOpenSignal):
            brk.admit()  # a second caller while the probe is live
        brk.record_success()
        assert brk.state() == STATE_CLOSED
        brk.admit()

    def test_failed_probe_reopens(self):
        brk = CircuitBreaker("k", self.POLICY)
        for _ in range(3):
            brk.record_failure()
        time.sleep(self.POLICY.cooldown_s * 1.5)
        brk.admit()
        assert brk.record_failure("/tmp/report.json")  # probe failed
        assert brk.state() == STATE_OPEN and brk.opens == 2
        assert brk.to_dict()["report_path"] == "/tmp/report.json"

    def test_threshold_zero_disables(self):
        policy = BreakerPolicy(threshold=0)
        assert not policy.enabled
        brk = CircuitBreaker("k", policy)
        for _ in range(10):
            assert not brk.record_failure()
        brk.admit()


class TestDrainRateTracker:
    def test_cold_tracker_gives_the_fixed_hint(self):
        tracker = DrainRateTracker()
        assert tracker.rate_per_s() is None
        assert tracker.retry_after_s() == DrainRateTracker.COLD_HINT_S

    def test_rate_and_hint_from_observed_completions(self):
        tracker = DrainRateTracker()
        t0 = 100.0
        for i in range(5):  # one completion every 10ms => 100/s
            tracker.record_completion(stamp=t0 + i * 0.01)
        assert tracker.rate_per_s() == pytest.approx(100.0)
        assert tracker.retry_after_s(backlog=1) == pytest.approx(0.01)
        assert tracker.retry_after_s(backlog=10) == pytest.approx(0.1)

    def test_hint_is_clamped(self):
        tracker = DrainRateTracker()
        tracker.record_completion(stamp=100.0)
        tracker.record_completion(stamp=100.0001)
        assert tracker.retry_after_s() >= DrainRateTracker.MIN_HINT_S
        slow = DrainRateTracker()
        slow.record_completion(stamp=100.0)
        slow.record_completion(stamp=200.0)
        assert slow.retry_after_s() == DrainRateTracker.MAX_HINT_S


class TestDeadlinePropagation:
    def test_spent_budget_sheds_in_queue_with_structure(self):
        with SimulationService(workers=1) as svc:
            job = svc.submit(LaunchSpec(kernel="kern", deadline_s=0.0,
                                        request_id="doomed"),
                             module=_noop_module())
            with pytest.raises(DeadlineExceeded) as excinfo:
                job.result(timeout=60)
            err = excinfo.value
            assert err.stage == "queue"
            assert err.budget_s == 0.0 and err.elapsed_s >= 0.0
            assert err.request_id == "doomed"
            assert err.retry_after_s is not None and err.retry_after_s > 0
            assert err.to_dict()["error"] == "DeadlineExceeded"
            assert svc.stats.to_dict()["shed_deadline"] == 1

    def test_queued_requests_behind_slow_work_are_shed(self):
        slow = _slow_module()
        with SimulationService(workers=1, queue_depth=8) as svc:
            spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                              watchdog_s=2.0)
            blocker = svc.submit(spec, module=slow)
            doomed = [svc.submit(
                LaunchSpec(kernel="kern", deadline_s=0.01,
                           request_id=f"d{i}"),
                module=_noop_module()) for i in range(3)]
            shed = 0
            for job in doomed:
                try:
                    job.result(timeout=60)
                except DeadlineExceeded as exc:
                    assert exc.stage in ("queue", "compile")
                    shed += 1
            assert shed == 3  # 10ms budgets cannot survive the blocker
            assert not blocker.result(timeout=60).ok  # watchdog-bounded

    def test_remaining_budget_becomes_the_device_watchdog(self):
        # In-run expiry surfaces as a structured WatchdogExpired crash
        # result — the device is aborted with whatever budget was left.
        with SimulationService(workers=1) as svc:
            served = svc.run(LaunchSpec(kernel="kern", num_teams=2,
                                        threads_per_team=2, deadline_s=0.05),
                             module=_slow_module())
            assert not served.ok
            assert served.report.error_type == "WatchdogExpired"

    def test_deadline_tightens_but_never_loosens_the_watchdog(self):
        # An explicit watchdog tighter than the deadline stays in force.
        with SimulationService(workers=1) as svc:
            served = svc.run(
                LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                           watchdog_s=0.05, deadline_s=30.0),
                module=_slow_module())
            assert not served.ok
            assert served.report.error_type == "WatchdogExpired"

    def test_generous_deadline_changes_nothing(self):
        with SimulationService(workers=1) as svc:
            served = svc.run(LaunchSpec(kernel="kern", deadline_s=60.0),
                             module=_noop_module())
            assert served.ok and not served.retried


def _slow_module():
    from tests.serve.test_service import _barrier_loop_module

    return _barrier_loop_module(500_000)


class _Flaky:
    """make_args hook that raises *fail_first* times, then cooperates.

    A make_args failure is an *internal* service failure (not a program
    fault), which is exactly what the retry policy and breaker govern.
    """

    def __init__(self, fail_first, exc=RuntimeError):
        self.fail_first = fail_first
        self.exc = exc
        self.calls = 0

    def __call__(self, gpu, compiled):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise self.exc(f"injected internal failure #{self.calls}")
        return ()


class TestRetryIntegration:
    def test_one_internal_failure_retries_and_succeeds(self):
        flaky = _Flaky(fail_first=1)
        with SimulationService(workers=1) as svc:  # default policy
            result = svc.run(LaunchSpec(kernel="kern"),
                             module=_noop_module(), make_args=flaky)
            assert result.ok and result.retried
            assert result.report is not None  # the internal fault on record
            assert result.report.retry["error_type"] == "RuntimeError"
            stats = svc.stats.to_dict()
            assert stats["retried"] == 1 and stats["attempts"] == 2

    def test_exhausted_policy_raises_the_internal_error(self):
        flaky = _Flaky(fail_first=10)
        with SimulationService(workers=1) as svc:
            job = svc.submit(LaunchSpec(kernel="kern"),
                             module=_noop_module(), make_args=flaky)
            with pytest.raises(RuntimeError, match="internal failure"):
                job.result(timeout=60)
            assert flaky.calls == 2  # default policy: two attempts
            assert svc.stats.to_dict()["internal_errors"] == 1

    def test_wider_policy_takes_more_attempts(self):
        flaky = _Flaky(fail_first=3)
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.001,
                             backoff_cap_s=0.002)
        with SimulationService(workers=1, retry_policy=policy) as svc:
            result = svc.run(LaunchSpec(kernel="kern"),
                             module=_noop_module(), make_args=flaky)
            assert result.ok and result.retried
            assert flaky.calls == 4
            assert svc.stats.to_dict()["attempts"] == 4

    def test_single_attempt_policy_never_retries(self):
        flaky = _Flaky(fail_first=1)
        with SimulationService(
                workers=1, retry_policy=RetryPolicy(max_attempts=1)) as svc:
            job = svc.submit(LaunchSpec(kernel="kern"),
                             module=_noop_module(), make_args=flaky)
            with pytest.raises(RuntimeError):
                job.result(timeout=60)
            assert flaky.calls == 1

    def test_backoff_respects_the_request_deadline(self):
        # The retry would have to sleep past the deadline: shed at the
        # retry stage instead of sleeping into certain expiry.
        flaky = _Flaky(fail_first=1)
        policy = RetryPolicy(max_attempts=2, backoff_base_s=30.0,
                             backoff_cap_s=30.0, jitter=0.0)
        with SimulationService(workers=1, retry_policy=policy) as svc:
            job = svc.submit(LaunchSpec(kernel="kern", deadline_s=0.5),
                             module=_noop_module(), make_args=flaky)
            with pytest.raises(DeadlineExceeded) as excinfo:
                job.result(timeout=60)
            assert excinfo.value.stage == "retry"


class TestBreakerIntegration:
    POLICY = BreakerPolicy(threshold=2, cooldown_s=0.05)

    def _service(self):
        return SimulationService(
            workers=1,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_policy=self.POLICY,
        )

    def test_consecutive_failures_open_and_shed(self):
        module = _noop_module()
        flaky = _Flaky(fail_first=100)
        with self._service() as svc:
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    svc.run(LaunchSpec(kernel="kern"), module=module,
                            make_args=flaky)
            with pytest.raises(CircuitOpen) as excinfo:
                svc.run(LaunchSpec(kernel="kern", request_id="shed-me"),
                        module=module, make_args=flaky)
            err = excinfo.value
            assert err.failures == 2
            assert err.request_id == "shed-me"
            assert err.retry_after_s is not None and err.retry_after_s > 0
            assert err.key.startswith("module:")
            stats = svc.stats.to_dict()
            assert stats["shed_breaker"] == 1
            assert stats["breaker_opens"] == 1
            assert flaky.calls == 2  # the shed request never ran

    def test_probe_closes_the_circuit_after_recovery(self):
        module = _noop_module()
        flaky = _Flaky(fail_first=2)  # recovered by probe time
        with self._service() as svc:
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    svc.run(LaunchSpec(kernel="kern"), module=module,
                            make_args=flaky)
            time.sleep(self.POLICY.cooldown_s * 1.5)
            probe = svc.run(LaunchSpec(kernel="kern"), module=module,
                            make_args=flaky)
            assert probe.ok
            after = svc.run(LaunchSpec(kernel="kern"), module=module,
                            make_args=flaky)
            assert after.ok
            assert svc.health()["breakers_open"] == 0

    def test_breakers_are_per_module(self):
        poisoned, healthy = _noop_module(), _noop_module()
        flaky = _Flaky(fail_first=100)
        with self._service() as svc:
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    svc.run(LaunchSpec(kernel="kern"), module=poisoned,
                            make_args=flaky)
            # The poisoned module's circuit is open...
            with pytest.raises(CircuitOpen):
                svc.run(LaunchSpec(kernel="kern"), module=poisoned,
                        make_args=flaky)
            # ...but an unrelated module is untouched.
            assert svc.run(LaunchSpec(kernel="kern"), module=healthy).ok

    def test_program_faults_never_trip_the_breaker(self):
        from tests.serve.test_service import _malloc_module

        with self._service() as svc:
            module = _malloc_module()
            spec = LaunchSpec(kernel="kern", faults="malloc_fail:n=1")
            for _ in range(4):  # far past the threshold
                result = svc.run(spec, module=module)
                assert not result.ok  # isolated program fault each time
            assert svc.stats.to_dict()["breaker_opens"] == 0
            assert svc.health()["breakers_open"] == 0


class TestHealth:
    def test_health_snapshot_shape_and_liveness(self):
        with SimulationService(workers=2) as svc:
            svc.run(LaunchSpec(kernel="kern"), module=_noop_module())
            health = svc.health()
        assert health["closed"] in (False, True)
        assert health["workers"] == 2
        assert health["workers_alive"] >= 1
        assert health["in_flight"] == 0 and health["queued"] == 0
        assert health["capacity"] == svc.capacity
        assert isinstance(health["breakers"], dict)
        assert health["retry_after_s"] > 0
        assert health["stats"]["completed"] == 1
        assert health["pool"]["in_use"] == 0  # everything returned

    def test_health_reports_queue_pressure(self):
        slow = _slow_module()
        with SimulationService(workers=1, queue_depth=4) as svc:
            spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                              watchdog_s=2.0)
            jobs = [svc.submit(spec, module=slow) for _ in range(3)]
            health = svc.health()
            assert health["in_flight"] == 3
            assert health["queued"] >= 1  # one running, rest waiting
            for job in jobs:
                job.result(timeout=60)

    def test_health_counter_lands_on_the_trace(self):
        from repro.trace.collector import TraceCollector, install

        collector = TraceCollector()
        with install(collector):
            with SimulationService(workers=1) as svc:
                svc.run(LaunchSpec(kernel="kern"), module=_noop_module())
                svc.health()
        counters = [e for e in collector.events_snapshot()
                    if e.get("name") == "serve.health"]
        assert counters and counters[-1]["args"]["in_flight"] == 0
