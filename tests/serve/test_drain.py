"""Graceful-drain semantics: close(), cancel(), and no silent drops.

The serving layer's lifecycle promise: ``close(wait=True)`` drains
in-flight work; a drain *deadline* bounds that wait by cancelling
whatever is still queued (structured :class:`RequestCancelled`, never a
hung future); :meth:`ServeJob.cancel` releases individual queued
requests and their admission slots; late submissions are refused with
:class:`ServiceClosed`; and crash reports of failed requests land
where configured.
"""

import threading

import pytest

from repro.serve import (
    AdmissionRejected,
    DeadlineExceeded,
    LaunchSpec,
    RequestCancelled,
    ServiceClosed,
    SimulationService,
)
from repro.ir import Module, verify_module
from tests.conftest import make_kernel

pytestmark = pytest.mark.serve


def _noop_module():
    module = Module("m")
    _, b = make_kernel(module, params=())
    b.ret()
    verify_module(module)
    return module


def _slow_module():
    from tests.serve.test_service import _barrier_loop_module

    return _barrier_loop_module(500_000)


def _blocker_spec(watchdog_s=0.5):
    return LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                      watchdog_s=watchdog_s)


class TestClose:
    def test_default_close_drains_everything(self):
        svc = SimulationService(workers=2)
        module = _noop_module()
        jobs = [svc.submit(LaunchSpec(kernel="kern"), module=module)
                for _ in range(4)]
        svc.close()
        assert all(job.result(timeout=60).ok for job in jobs)
        assert svc.stats.to_dict()["cancelled"] == 0

    def test_close_is_idempotent(self):
        svc = SimulationService(workers=1)
        svc.close()
        svc.close(deadline_s=0.01)

    def test_late_submit_raises_service_closed(self):
        svc = SimulationService(workers=1)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(LaunchSpec(kernel="kern"), module=_noop_module())

    def test_drain_deadline_cancels_queued_work(self):
        svc = SimulationService(workers=1, queue_depth=8)
        blocker = svc.submit(_blocker_spec(), module=_slow_module())
        queued = [svc.submit(LaunchSpec(kernel="kern", request_id=f"q{i}"),
                             module=_noop_module())
                  for i in range(3)]
        svc.close(deadline_s=0.05)
        # The running request drains (bounded by its own watchdog)...
        assert blocker.result(timeout=60).report.error_type == \
            "WatchdogExpired"
        # ...while the queued ones resolve with a structured
        # cancellation instead of hanging or vanishing.
        cancelled = 0
        for job in queued:
            try:
                job.result(timeout=60)
            except (RequestCancelled, DeadlineExceeded):
                cancelled += 1
        assert cancelled == 3
        stats = svc.stats.to_dict()
        terminal = (stats["completed"] + stats["cancelled"]
                    + stats["shed_deadline"])
        assert stats["submitted"] == terminal

    def test_drain_deadline_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_DRAIN_S", "0.05")
        svc = SimulationService(workers=1, queue_depth=8)
        svc.submit(_blocker_spec(), module=_slow_module())
        queued = svc.submit(LaunchSpec(kernel="kern"), module=_noop_module())
        svc.close()  # no explicit deadline: the env knob bounds it
        with pytest.raises((RequestCancelled, DeadlineExceeded)):
            queued.result(timeout=60)


class TestCancel:
    def test_cancel_queued_request_releases_its_slot(self):
        with SimulationService(workers=1, queue_depth=1) as svc:
            blocker = svc.submit(_blocker_spec(), module=_slow_module())
            queued = svc.submit(LaunchSpec(kernel="kern", request_id="victim"),
                                module=_noop_module())
            assert svc.capacity == 2  # saturated: next submit would bounce
            assert queued.cancel() is True
            assert queued.cancel() is False  # idempotent, reports once
            with pytest.raises(RequestCancelled) as excinfo:
                queued.result(timeout=60)
            assert excinfo.value.request_id == "victim"
            assert svc.stats.to_dict()["cancelled"] == 1
            # The admission slot came back: this submit must not bounce.
            replacement = svc.submit(LaunchSpec(kernel="kern"),
                                     module=_noop_module())
            assert blocker.result(timeout=60) is not None
            assert replacement.result(timeout=60).ok

    def test_cancel_after_completion_returns_false(self):
        with SimulationService(workers=1) as svc:
            job = svc.submit(LaunchSpec(kernel="kern"), module=_noop_module())
            assert job.result(timeout=60).ok
            assert job.cancel() is False
            assert svc.stats.to_dict()["cancelled"] == 0

    def test_job_state_machine(self):
        with SimulationService(workers=1) as svc:
            done = svc.submit(LaunchSpec(kernel="kern"), module=_noop_module())
            done.result(timeout=60)
            assert done.state == "done" and not done.cancelled
            blocker = svc.submit(_blocker_spec(), module=_slow_module())
            queued = svc.submit(LaunchSpec(kernel="kern"),
                                module=_noop_module())
            assert queued.state == "queued"
            queued.cancel()
            assert queued.state == "cancelled" and queued.cancelled
            blocker.result(timeout=60)


class TestConcurrentDrain:
    def test_no_request_is_silently_dropped_under_racing_close(self):
        """Submitters racing a deadline-bounded close: every accepted
        job resolves (result or structured error), every refused submit
        raises a structured error, and the counters balance."""
        svc = SimulationService(workers=2, queue_depth=16)
        module = _noop_module()
        accepted = []
        refused = []
        lock = threading.Lock()

        def submitter(t):
            for i in range(10):
                try:
                    job = svc.submit(
                        LaunchSpec(kernel="kern", request_id=f"s{t}-{i:02d}"),
                        module=module)
                    with lock:
                        accepted.append(job)
                except (ServiceClosed, AdmissionRejected) as exc:
                    with lock:
                        refused.append(type(exc).__name__)

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(4)]
        for th in threads:
            th.start()
        svc.close(deadline_s=0.05)
        for th in threads:
            th.join()

        outcomes = {"ok": 0, "cancelled": 0, "shed": 0}
        for job in accepted:
            try:
                assert job.result(timeout=60).ok
                outcomes["ok"] += 1
            except RequestCancelled:
                outcomes["cancelled"] += 1
            except DeadlineExceeded:
                outcomes["shed"] += 1
        # Everything is accounted for: accepted == resolved, and the
        # service's own books agree.
        assert sum(outcomes.values()) == len(accepted)
        stats = svc.stats.to_dict()
        assert stats["submitted"] == len(accepted)
        terminal = (stats["completed"] + stats["cancelled"]
                    + stats["shed_deadline"] + stats["shed_breaker"]
                    + stats["internal_errors"])
        assert stats["submitted"] == terminal
        assert stats["rejected"] == len(
            [r for r in refused if r == "AdmissionRejected"])


class TestCrashReportPlacement:
    def test_failed_requests_save_reports_under_report_dir(self, tmp_path):
        from tests.serve.test_service import _malloc_module

        report_dir = str(tmp_path / "crash-reports")
        with SimulationService(workers=1, save_reports=True,
                               report_dir=report_dir) as svc:
            result = svc.run(LaunchSpec(kernel="kern",
                                        faults="malloc_fail:n=1"),
                             module=_malloc_module())
        assert not result.ok
        assert result.report_path is not None
        assert result.report_path.startswith(report_dir)
        reports = list((tmp_path / "crash-reports").glob("*.json"))
        assert len(reports) == 1

    def test_default_report_dir_is_the_cache_crash_reports_dir(self):
        from repro.faults.report import default_report_dir
        from tests.serve.test_service import _malloc_module

        with SimulationService(workers=1, save_reports=True) as svc:
            result = svc.run(LaunchSpec(kernel="kern",
                                        faults="malloc_fail:n=1"),
                             module=_malloc_module())
        # The session fixture points REPRO_CACHE_DIR at a tmpdir, so
        # this lands in <tmp cache>/crash-reports/ — the documented
        # .repro-cache/crash-reports/ location in a real checkout.
        assert result.report_path.startswith(default_report_dir())
