"""Chaos machinery: ChaosState units, service integration, import guard.

The chaos module consumes the *service-level* sites of the
``REPRO_FAULTS`` grammar (``worker_die``, ``compile_stall``,
``slow_request``) and misbehaves inside the serving workers so the
resilience layer can be drilled.  The key structural property — pinned
by a subprocess test here — is that a *default* service never imports
any of it.
"""

import subprocess
import sys

import pytest

from repro.faults.plan import FaultPlan
from repro.ir import Module, verify_module
from repro.serve import LaunchSpec, RetryPolicy, SimulationService
from repro.serve.chaos import ChaosState, InjectedWorkerDeath, resolve_chaos
from repro.vgpu.errors import SimulationError
from tests.conftest import make_kernel

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


def _noop_module():
    module = Module("m")
    _, b = make_kernel(module, params=())
    b.ret()
    verify_module(module)
    return module


class TestChaosState:
    def test_die_budget_fires_exactly_n_times(self):
        state = resolve_chaos("worker_die:n=2")
        for _ in range(2):
            with pytest.raises(InjectedWorkerDeath):
                state.on_attempt()
        state.on_attempt()  # budget spent: attempts now survive
        state.on_attempt()
        assert state.deaths == 2

    def test_death_is_not_a_simulation_error(self):
        # Worker death must take the internal-failure path (retry,
        # breaker), never the program-fault (CrashReport) path.
        assert not issubclass(InjectedWorkerDeath, SimulationError)
        exc = InjectedWorkerDeath(3)
        assert exc.attempt_no == 3
        assert "attempt #3" in str(exc)

    def test_stall_and_slow_sleep_and_count(self):
        state = resolve_chaos("compile_stall:ms=1;slow_request:ms=1")
        state.on_compile()
        state.on_request()
        state.on_request()
        assert state.stalls == 1
        assert state.slowed == 2
        assert state.deaths == 0
        state.on_attempt()  # no die site: a no-op

    def test_to_dict_snapshot(self):
        state = resolve_chaos("worker_die:n=1;compile_stall:ms=25")
        with pytest.raises(InjectedWorkerDeath):
            state.on_attempt()
        snap = state.to_dict()
        assert snap["die_budget"] == 1 and snap["deaths"] == 1
        assert snap["stall_ms"] == 25.0 and snap["stalls"] == 0
        assert snap["slow_ms"] == 0.0 and snap["slowed"] == 0

    def test_device_sites_are_rejected(self):
        with pytest.raises(ValueError, match="device site"):
            ChaosState(FaultPlan.parse("malloc_fail:n=1").sites)


class TestResolveChaos:
    def test_none_passthrough(self):
        assert resolve_chaos(None) is None

    def test_state_passthrough(self):
        state = ChaosState(FaultPlan.parse("worker_die:n=1").service_sites())
        assert resolve_chaos(state) is state

    def test_string_and_plan_forms_agree(self):
        from_str = resolve_chaos("worker_die:n=3")
        from_plan = resolve_chaos(FaultPlan.parse("worker_die:n=3"))
        assert from_str.die_budget == from_plan.die_budget == 3

    def test_device_only_plan_is_an_error(self):
        with pytest.raises(ValueError, match="no service-level sites"):
            resolve_chaos("malloc_fail:n=1")

    def test_mixed_plan_rejects_its_device_sites(self):
        # Device sites belong on LaunchSpec.faults even when the plan
        # also carries service sites — mixing is refused loudly.
        with pytest.raises(ValueError, match="device site"):
            resolve_chaos("worker_die:n=1;malloc_fail:n=1")


class TestServiceIntegration:
    def test_worker_death_is_retried_to_success(self):
        chaos = resolve_chaos("worker_die:n=1")
        with SimulationService(
                workers=1, chaos=chaos,
                retry_policy=RetryPolicy(max_attempts=3,
                                         backoff_base_s=0.001)) as svc:
            result = svc.run(LaunchSpec(kernel="kern"), module=_noop_module())
        assert result.ok
        assert result.retried
        assert chaos.deaths == 1
        stats = svc.stats.to_dict()
        assert stats["retried"] == 1 and stats["attempts"] == 2

    def test_chaos_state_appears_in_health(self):
        with SimulationService(workers=1, chaos="slow_request:ms=1") as svc:
            svc.run(LaunchSpec(kernel="kern"), module=_noop_module())
            health = svc.health()
        assert health["chaos"]["slowed"] == 1


class TestDisabledPathGuard:
    def test_default_service_never_imports_chaos(self):
        """Satellite S6: the chaos module is pay-for-use.  Constructing
        and exercising a default service must not pull it in — checked
        in a subprocess because this test session's own imports pollute
        sys.modules."""
        code = (
            "import sys\n"
            "from repro.serve import LaunchSpec, SimulationService\n"
            "from repro.ir import (Function, FunctionType, IRBuilder,\n"
            "                      Module, VOID, verify_module)\n"
            "module = Module('m')\n"
            "fn = module.add_function(Function('kern', FunctionType(VOID, ())))\n"
            "fn.attrs.add('kernel')\n"
            "IRBuilder(module, fn.add_block('entry')).ret()\n"
            "verify_module(module)\n"
            "with SimulationService(workers=1) as svc:\n"
            "    result = svc.run(LaunchSpec(kernel='kern'), module=module)\n"
            "assert result.ok\n"
            "assert 'repro.serve.chaos' not in sys.modules, 'chaos imported'\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
