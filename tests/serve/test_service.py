"""The serve layer's contract: served == direct, and failures stay put.

* A request served through :class:`repro.serve.SimulationService` is
  bit-identical to a direct ``VirtualGPU.run`` of the same spec —
  profiles, verification, fault firing and the device-timeline trace —
  across engines and under concurrency.
* A saturated service answers with a structured
  :class:`~repro.serve.AdmissionRejected` instead of hanging.
* A request's failure becomes its own ``ok=False`` result; it never
  leaks into other tenants or poisons the pool.
"""

import threading

import pytest

from repro.bench.builds import BUILD_ORDER, build_options
from repro.bench.harness import APPS
from repro.faults.report import CrashReport
from repro.ir import I64, Module, verify_module
from repro.serve import (
    AdmissionRejected,
    DevicePool,
    LaunchSpec,
    ServiceClosed,
    SimulationService,
)
from repro.toolchain.service import ToolchainSession
from repro.trace.collector import TraceCollector, install
from repro.vgpu import ENGINE_DECODED, ENGINE_LEGACY, VirtualGPU
from tests.conftest import make_kernel

pytestmark = pytest.mark.serve

APP = "testsnap"
BUILD = BUILD_ORDER[0]

#: The engine matrix of the acceptance criterion: legacy, decoded,
#: decoded with parallel team simulation.
ENGINE_CELLS = (
    (ENGINE_LEGACY, None),
    (ENGINE_DECODED, None),
    (ENGINE_DECODED, 2),
)


def _direct_app_run(engine, sim_jobs):
    """The reference: compile + run the app cell directly."""
    app = APPS[APP]
    size = app.default_size()
    compiled = ToolchainSession().compile(app.build_program(size),
                                          build_options()[BUILD])
    gpu = VirtualGPU(compiled.module)
    host_args, verify = app.prepare(gpu, size)
    spec = LaunchSpec(
        kernel=app.KERNEL, num_teams=app.TEAMS, threads_per_team=app.THREADS,
        args=tuple(compiled.abi(app.KERNEL).marshal(gpu, host_args)),
        engine=engine, sim_jobs=sim_jobs,
    )
    result = gpu.run(spec)
    return result.profile.to_dict(), verify(gpu, host_args)


def _barrier_loop_module(iterations):
    """kern(): *iterations* barrier phases — abortable at each one."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    entry = b.block
    loop = func.add_block("loop")
    done = func.add_block("done")
    b.br(loop)
    b.set_insert_point(loop)
    i = b.phi(I64, "i")
    i.add_incoming(b.i64(0), entry)
    b.barrier()
    ni = b.add(i, b.i64(1))
    i.add_incoming(ni, loop)
    b.cond_br(b.icmp("slt", ni, b.i64(iterations)), loop, done)
    b.set_insert_point(done)
    b.ret()
    verify_module(module)
    return module


def _malloc_module():
    """kern(): three device mallocs, then return."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    for _ in range(3):
        b.intrinsic("malloc", [b.i64(16)])
    b.ret()
    verify_module(module)
    return module


class TestServedEqualsDirect:
    def test_profiles_and_verification_match_across_engines(self):
        direct = {cell: _direct_app_run(*cell) for cell in ENGINE_CELLS}
        with SimulationService(workers=3) as svc:
            jobs = {
                cell: svc.submit_app(APP, build=BUILD, engine=cell[0],
                                     sim_jobs=cell[1])
                for cell in ENGINE_CELLS
            }
            for cell, job in jobs.items():
                served = job.result(timeout=600)
                profile, max_error = direct[cell]
                assert served.ok, served.report and served.report.to_dict()
                assert served.engine == cell[0]
                assert served.profile.to_dict() == profile
                assert served.payload == {"max_error": max_error}
                assert served.latency_s >= served.duration_s >= 0.0

    def test_concurrent_tenants_on_one_warm_pool_stay_identical(self):
        profile, max_error = _direct_app_run(ENGINE_DECODED, None)
        with SimulationService(workers=4) as svc:
            jobs = [svc.submit_app(APP, build=BUILD, request_id=f"t{i}")
                    for i in range(8)]
            for job in jobs:
                served = job.result(timeout=600)
                assert served.ok
                assert served.profile.to_dict() == profile
                assert served.payload == {"max_error": max_error}
            # 8 requests over 4 workers must have reused warm devices.
            assert svc.pool.stats.reuses > 0
            assert svc.stats.to_dict()["compiles"] == 1

    def test_request_ids_round_trip_and_autogenerate(self):
        with SimulationService(workers=1) as svc:
            tagged = svc.submit_app(APP, build=BUILD, request_id="mine")
            auto = svc.submit_app(APP, build=BUILD)
            assert tagged.result(timeout=600).request_id == "mine"
            generated = auto.result(timeout=600).request_id
            assert generated and generated.startswith("r")


class TestFaultParity:
    def test_injected_fault_fires_identically_served_and_direct(self):
        module = _malloc_module()
        spec = LaunchSpec(kernel="kern", faults="malloc_fail:n=2")
        gpu = VirtualGPU(module)
        with pytest.raises(Exception) as excinfo:
            gpu.run(spec)
        direct_report = CrashReport.from_exception(
            excinfo.value, kernel="kern", engine=gpu.engine,
            fault_plan=gpu.fault_plan)
        with SimulationService(workers=1) as svc:
            served = svc.run(spec, module=_malloc_module())
        assert not served.ok and served.profile is None
        assert served.report.error_type == "InjectedFault"
        assert served.report.comparable_dict() == \
            direct_report.comparable_dict()

    def test_watchdog_expiry_is_an_isolated_failure_not_a_hang(self):
        spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                          watchdog_s=0.05)
        with SimulationService(workers=1) as svc:
            served = svc.run(spec, module=_barrier_loop_module(500_000))
            assert not served.ok
            assert served.report.error_type == "WatchdogExpired"
            # The worker (and its device slot) survive for the next tenant.
            ok = svc.run(LaunchSpec(kernel="kern", num_teams=1,
                                    threads_per_team=1, watchdog_s=30.0),
                         module=_barrier_loop_module(3))
            assert ok.ok

    def test_one_tenants_fault_does_not_poison_others(self):
        with SimulationService(workers=2) as svc:
            bad = svc.submit(LaunchSpec(kernel="kern",
                                        faults="malloc_fail:n=1"),
                             module=_malloc_module())
            good = svc.submit_app(APP, build=BUILD)
            assert not bad.result(timeout=600).ok
            assert good.result(timeout=600).ok
            assert svc.stats.to_dict()["failed"] == 1


class TestTraceParity:
    @staticmethod
    def _device_timeline(collector):
        """Device-timeline events (vgpu + runtime cats), wall-clock
        stamps stripped — everything else must match bit-for-bit."""
        out = []
        for event in collector.events_snapshot():
            if event.get("cat") not in ("vgpu", "runtime"):
                continue
            out.append({k: v for k, v in event.items()
                        if k not in ("ts", "dur")})
        return out

    def test_served_requests_emit_the_direct_device_timeline(self):
        spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                          request_id="req-x")

        direct_collector = TraceCollector()
        with install(direct_collector):
            VirtualGPU(_barrier_loop_module(3)).run(spec)

        served_collector = TraceCollector()
        with install(served_collector):
            with SimulationService(workers=1) as svc:
                served = svc.run(spec, module=_barrier_loop_module(3))
        assert served.ok
        direct_events = self._device_timeline(direct_collector)
        served_events = self._device_timeline(served_collector)
        assert direct_events == served_events
        # The request id reached the kernel span in both runs.
        kernel_args = [e.get("args", {}) for e in direct_events
                       if e.get("name", "").startswith("kernel")]
        assert any(a.get("request_id") == "req-x" for a in kernel_args)

    def test_serve_layer_spans_carry_the_request_id(self):
        collector = TraceCollector()
        with install(collector):
            with SimulationService(workers=1) as svc:
                svc.run(LaunchSpec(kernel="kern", request_id="req-y"),
                        module=_barrier_loop_module(3))
        serve_events = [e for e in collector.events_snapshot()
                        if e.get("cat") == "serve"]
        names = {e["name"] for e in serve_events}
        assert "serve.submit" in names and "serve.request" in names
        assert all(e["args"]["request_id"] == "req-y" for e in serve_events)


class TestAdmissionControl:
    def test_saturated_service_rejects_with_structured_error(self):
        slow = _barrier_loop_module(500_000)
        with SimulationService(workers=1, queue_depth=1) as svc:
            assert svc.capacity == 2
            # Fill the worker and the queue with watchdog-bounded slow
            # requests, then the next submission must bounce.
            spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                              watchdog_s=1.0)
            first = svc.submit(spec, module=slow)
            second = svc.submit(spec, module=slow)
            with pytest.raises(AdmissionRejected) as excinfo:
                svc.submit(spec.replace(request_id="bounced"), module=slow)
            err = excinfo.value
            assert err.in_flight == 2 and err.capacity == 2
            assert err.request_id == "bounced"
            assert err.to_dict()["error"] == "AdmissionRejected"
            # The admitted requests still drain (watchdog bounds them).
            assert not first.result(timeout=600).ok
            assert not second.result(timeout=600).ok
            assert svc.stats.to_dict()["rejected"] == 1

    def test_max_in_flight_caps_below_derived_capacity(self):
        svc = SimulationService(workers=4, queue_depth=16, max_in_flight=3)
        try:
            assert svc.capacity == 3
        finally:
            svc.close()

    def test_closed_service_refuses_submissions(self):
        svc = SimulationService(workers=1)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(LaunchSpec(kernel="kern"),
                       module=_barrier_loop_module(3))

    def test_submit_needs_exactly_one_payload_source(self):
        with SimulationService(workers=1) as svc:
            with pytest.raises(ValueError, match="exactly one"):
                svc.submit(LaunchSpec(kernel="kern"))


class TestDevicePool:
    def test_release_then_acquire_reuses_the_same_device(self):
        module = _barrier_loop_module(3)
        pool = DevicePool()
        gpu = pool.acquire(module)
        pool.release(gpu, module, None)
        again = pool.acquire(module)
        assert again is gpu
        assert pool.stats.builds == 1 and pool.stats.reuses == 1

    def test_reset_clears_per_request_allocations(self):
        import numpy as np

        module = _barrier_loop_module(3)
        pool = DevicePool()
        gpu = pool.acquire(module)
        baseline_brk = gpu.memory.global_seg.brk
        gpu.alloc_array(np.zeros(1024, dtype=np.int64))
        pool.release(gpu, module, None)
        warm = pool.acquire(module)
        assert warm is gpu
        assert warm.memory.global_seg.brk == baseline_brk

    def test_sanitized_devices_are_never_pooled(self):
        module = _barrier_loop_module(3)
        pool = DevicePool()
        gpu = pool.acquire(module, sanitize=True)
        pool.release(gpu, module, None)
        assert pool.idle_count() == 0
        assert pool.stats.discards == 1
        assert pool.acquire(module, sanitize=True) is not gpu

    def test_idle_shelf_is_bounded(self):
        module = _barrier_loop_module(3)
        pool = DevicePool(max_idle_per_key=1)
        a, b = pool.acquire(module), pool.acquire(module)
        pool.release(a, module, None)
        pool.release(b, module, None)
        assert pool.idle_count() == 1
        assert pool.stats.discards == 1


class TestKnobs:
    def test_service_reads_the_serve_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "2")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "3")
        svc = SimulationService()
        try:
            assert svc.workers == 2
            assert svc.capacity == 5
        finally:
            svc.close()

    def test_max_inflight_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "4")
        svc = SimulationService(workers=8, queue_depth=8)
        try:
            assert svc.capacity == 4
        finally:
            svc.close()
