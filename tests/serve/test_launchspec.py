"""The request-object launch API: LaunchSpec / LaunchResult / run().

Pins the redesign's contract: ``VirtualGPU.run(spec)`` is canonical,
``launch(spec)`` is a silent alias, and the expanded
``launch(kernel, args, teams, threads)`` keyword form is a deprecated
shim that warns exactly once per process.
"""

import warnings

import numpy as np
import pytest

from repro.ir import I64, PTR_GLOBAL, verify_module
from repro.vgpu import (
    ENGINE_DECODED,
    ENGINE_LEGACY,
    LaunchResult,
    LaunchSpec,
    SimulationError,
    VirtualGPU,
)
from repro.vgpu import interpreter as interp_mod
from tests.conftest import make_kernel


def _store_module(module):
    """kern(out, value): out[global_tid] = value."""
    func, b = make_kernel(module, params=(PTR_GLOBAL, I64),
                          arg_names=["out", "value"])
    tid = b.sext(b.add(b.mul(b.block_id(), b.block_dim()), b.thread_id()), I64)
    b.store(func.args[1], b.array_gep(func.args[0], I64, tid))
    b.ret()
    verify_module(module)
    return module


def _device(module, **kwargs):
    return VirtualGPU(_store_module(module), **kwargs)


class TestLaunchSpecValidation:
    def test_defaults(self):
        spec = LaunchSpec(kernel="kern")
        assert spec.num_teams == 1
        assert spec.threads_per_team == 1
        assert spec.args == ()
        assert spec.sim_jobs is None
        assert spec.engine is None

    def test_args_are_coerced_to_a_tuple(self):
        spec = LaunchSpec(kernel="kern", args=[1, 2, 3])
        assert spec.args == (1, 2, 3)

    @pytest.mark.parametrize("field,value", [
        ("num_teams", 0),
        ("threads_per_team", 0),
        ("dynamic_shared_bytes", -1),
        ("sim_jobs", 0),
        ("watchdog_s", -0.5),
        ("deadline_s", -0.1),
    ])
    def test_bounds_are_validated(self, field, value):
        with pytest.raises(ValueError, match=field):
            LaunchSpec(kernel="kern", **{field: value})

    def test_engine_is_resolved_at_construction(self):
        assert LaunchSpec(kernel="k", engine="legacy").engine == ENGINE_LEGACY
        with pytest.raises(ValueError):
            LaunchSpec(kernel="k", engine="warp9")

    def test_replace_derives_a_new_spec(self):
        spec = LaunchSpec(kernel="kern", num_teams=2)
        other = spec.replace(args=(1,), request_id="r1")
        assert other.args == (1,) and other.request_id == "r1"
        assert other.num_teams == 2
        assert spec.args == () and spec.request_id is None

    def test_specs_are_immutable(self):
        spec = LaunchSpec(kernel="kern")
        with pytest.raises(Exception):
            spec.num_teams = 4

    def test_describe_mentions_kernel_geometry_and_request(self):
        text = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=8,
                          request_id="r7").describe()
        assert "@kern" in text and "2x8" in text and "req=r7" in text

    def test_deadline_defaults_off_and_travels_through_replace(self):
        spec = LaunchSpec(kernel="kern")
        assert spec.deadline_s is None
        assert "deadline" not in spec.describe()
        budgeted = spec.replace(deadline_s=0.25)
        assert budgeted.deadline_s == 0.25
        assert "deadline=0.25s" in budgeted.describe()
        assert LaunchSpec(kernel="kern", deadline_s=0.0).deadline_s == 0.0


class TestRun:
    def test_run_returns_a_timed_launch_result(self, module):
        gpu = _device(module)
        out = gpu.alloc_array(np.zeros(4, dtype=np.int64))
        spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                          args=(out, 9))
        result = gpu.run(spec)
        assert isinstance(result, LaunchResult)
        assert result.ok and result.spec is spec
        assert result.profile.cycles > 0
        assert result.engine == gpu.engine
        assert result.finished_s >= result.started_s
        assert result.duration_s >= 0.0
        assert list(gpu.read_array(out, np.int64, 4)) == [9, 9, 9, 9]

    def test_per_spec_engine_override_is_restored(self, module):
        gpu = _device(module, engine=ENGINE_DECODED)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        spec = LaunchSpec(kernel="kern", args=(out, 1), engine=ENGINE_LEGACY)
        result = gpu.run(spec)
        assert result.engine == ENGINE_LEGACY
        assert gpu.engine == ENGINE_DECODED  # restored after the run

    def test_engine_override_matches_dedicated_device(self, module):
        from repro.ir import Module

        gpu_a = _device(module, engine=ENGINE_DECODED)
        gpu_b = _device(Module("m2"), engine=ENGINE_LEGACY)
        out_a = gpu_a.alloc_array(np.zeros(4, dtype=np.int64))
        out_b = gpu_b.alloc_array(np.zeros(4, dtype=np.int64))
        spec = LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2)
        p_a = gpu_a.run(spec.replace(args=(out_a, 3), engine=ENGINE_LEGACY))
        p_b = gpu_b.run(spec.replace(args=(out_b, 3)))
        assert p_a.profile.to_dict() == p_b.profile.to_dict()

    def test_sanitize_mismatch_raises(self, module):
        gpu = _device(module)  # not sanitized
        spec = LaunchSpec(kernel="kern", args=(0, 0), sanitize=True)
        with pytest.raises(SimulationError, match="sanitize"):
            gpu.run(spec)

    def test_dynamic_shared_travels_in_the_spec(self, module):
        from repro.ir import Module

        gpu = _device(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        spec = LaunchSpec(kernel="kern", args=(out, 5),
                          dynamic_shared_bytes=128)
        result = gpu.run(spec)
        assert result.ok
        assert gpu._dynamic_shared_bytes == 128


class TestLegacyShim:
    def test_launch_with_a_spec_does_not_warn(self, module):
        gpu = _device(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            profile = gpu.launch(LaunchSpec(kernel="kern", args=(out, 2)))
        assert profile.cycles > 0

    def test_launch_spec_rejects_extra_positionals(self, module):
        gpu = _device(module)
        with pytest.raises(TypeError, match="LaunchSpec"):
            gpu.launch(LaunchSpec(kernel="kern", args=(0, 0)), [], 1, 1)

    def test_legacy_kwargs_warn_exactly_once(self, module, monkeypatch):
        monkeypatch.setattr(interp_mod, "_warned_legacy_launch", False)
        gpu = _device(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            gpu.launch("kern", [out, 1], 1, 1)
            gpu.launch("kern", [out, 1], 1, 1)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "LaunchSpec" in str(w.message)]
        assert len(deprecations) == 1

    def test_legacy_kwargs_still_need_the_full_geometry(self, module):
        gpu = _device(module)
        with pytest.raises(TypeError, match="legacy launch"):
            gpu.launch("kern", [0, 0])

    def test_shim_and_spec_produce_identical_profiles(self, module):
        from repro.ir import Module

        gpu_a = _device(module)
        gpu_b = _device(Module("m2"))
        out_a = gpu_a.alloc_array(np.zeros(4, dtype=np.int64))
        out_b = gpu_b.alloc_array(np.zeros(4, dtype=np.int64))
        p_a = gpu_a.launch("kern", [out_a, 3], 2, 2)
        p_b = gpu_b.run(LaunchSpec(kernel="kern", num_teams=2,
                                   threads_per_team=2,
                                   args=(out_b, 3))).profile
        assert p_a.to_dict() == p_b.to_dict()


class TestWarmReset:
    def test_reset_restores_the_post_load_image(self, module):
        gpu = _device(module)
        assert gpu.resettable
        out = gpu.alloc_array(np.zeros(4, dtype=np.int64))
        gpu.run(LaunchSpec(kernel="kern", num_teams=2, threads_per_team=2,
                           args=(out, 7)))
        brk_before = gpu.memory.global_seg.brk
        gpu.reset_device()
        assert gpu.memory.global_seg.brk < brk_before
        # The device is fully usable again after the rewind.
        out2 = gpu.alloc_array(np.zeros(4, dtype=np.int64))
        result = gpu.run(LaunchSpec(kernel="kern", num_teams=2,
                                    threads_per_team=2, args=(out2, 5)))
        assert list(gpu.read_array(out2, np.int64, 4)) == [5, 5, 5, 5]
        assert result.ok

    def test_reset_produces_identical_profiles_across_requests(self, module):
        gpu = _device(module)
        profiles = []
        for _ in range(2):
            out = gpu.alloc_array(np.zeros(4, dtype=np.int64))
            result = gpu.run(LaunchSpec(kernel="kern", num_teams=2,
                                        threads_per_team=2, args=(out, 1)))
            profiles.append(result.profile.to_dict())
            gpu.reset_device()
        assert profiles[0] == profiles[1]

    def test_sanitized_devices_refuse_reset(self, module):
        gpu = _device(module, sanitize=True)
        assert not gpu.resettable
        with pytest.raises(SimulationError, match="sanitized"):
            gpu.reset_device()
