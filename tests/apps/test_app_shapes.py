"""Per-app qualitative shapes from the paper's evaluation (§V), on
reduced problem sizes.  Absolute numbers are not asserted — orderings
and resource categories are."""

import pytest

from repro.apps import gridmini, minifmm, rsbench, xsbench
from repro.bench.builds import (
    CUDA,
    NEW_RT,
    NEW_RT_NIGHTLY,
    NEW_RT_NO_ASSUME,
    OLD_RT_NIGHTLY,
    build_options,
)


@pytest.fixture(scope="module")
def xs_matrix():
    options = build_options()
    return {b: xsbench.run(o) for b, o in options.items()}


@pytest.fixture(scope="module")
def grid_matrix():
    options = build_options()
    return {b: gridmini.run(o) for b, o in options.items()}


@pytest.fixture(scope="module")
def fmm_matrix():
    options = build_options()
    return {b: minifmm.run(o) for b, o in options.items()}


class TestXSBenchShapes:
    def test_new_rt_beats_old_rt(self, xs_matrix):
        assert xs_matrix[NEW_RT].cycles < xs_matrix[OLD_RT_NIGHTLY].cycles

    def test_new_rt_close_to_cuda(self, xs_matrix):
        """Paper: within ~5% of CUDA with assumptions enabled."""
        gap = xs_matrix[NEW_RT].cycles / xs_matrix[CUDA].cycles
        assert gap < 1.10

    def test_cuda_still_fastest(self, xs_matrix):
        """§VII: the by-reference aggregate keeps a small residual gap."""
        assert xs_matrix[CUDA].cycles <= xs_matrix[NEW_RT].cycles

    def test_smem_pattern(self, xs_matrix):
        """Fig. 11: old ~2.3KB, new-nightly ~11.3KB, optimized 0."""
        assert 2000 < xs_matrix[OLD_RT_NIGHTLY].profile.shared_memory_bytes < 3000
        assert xs_matrix[NEW_RT_NIGHTLY].profile.shared_memory_bytes > 10000
        assert xs_matrix[NEW_RT_NO_ASSUME].profile.shared_memory_bytes == 0
        assert xs_matrix[NEW_RT].profile.shared_memory_bytes == 0
        assert xs_matrix[CUDA].profile.shared_memory_bytes == 0

    def test_oversubscription_cuts_registers(self, xs_matrix):
        """§V-B: assumptions reduce the register count."""
        assert (xs_matrix[NEW_RT].profile.registers
                < xs_matrix[NEW_RT_NO_ASSUME].profile.registers)

    def test_optimized_build_has_no_barriers(self, xs_matrix):
        assert xs_matrix[NEW_RT].profile.barriers == 0
        assert xs_matrix[OLD_RT_NIGHTLY].profile.barriers > 0


class TestRSBenchShapes:
    def test_all_builds_near_parity(self):
        """Fig. 10b: compute-bound, overhead is a small fraction."""
        options = build_options()
        cycles = {b: rsbench.run(o).cycles for b, o in options.items()}
        assert cycles[OLD_RT_NIGHTLY] / cycles[CUDA] < 1.35
        assert abs(cycles[NEW_RT] - cycles[CUDA]) / cycles[CUDA] < 0.05


class TestGridMiniShapes:
    def test_gflops_match_cuda(self, grid_matrix):
        """Fig. 12: the co-designed build matches CUDA GFlops."""
        new = grid_matrix[NEW_RT].profile.gflops
        cuda = grid_matrix[CUDA].profile.gflops
        assert abs(new - cuda) / cuda < 0.05

    def test_old_rt_lower_gflops(self, grid_matrix):
        assert (grid_matrix[OLD_RT_NIGHTLY].profile.gflops
                < grid_matrix[NEW_RT].profile.gflops)

    def test_flop_count_identical_across_builds(self, grid_matrix):
        flops = {b: r.profile.flops for b, r in grid_matrix.items()}
        assert len(set(flops.values())) == 1, flops

    def test_user_shared_tile_retained_everywhere(self, grid_matrix):
        """User-declared shared memory is semantics, not overhead."""
        for build, result in grid_matrix.items():
            assert result.profile.shared_memory_bytes >= 1024, build


class TestMiniFMMShapes:
    def test_new_rt_improves_substantially_over_old(self, fmm_matrix):
        """Paper: 1.85x improvement over the old runtime."""
        speedup = fmm_matrix[OLD_RT_NIGHTLY].cycles / fmm_matrix[NEW_RT].cycles
        assert speedup > 1.3

    def test_cuda_gap_remains(self, fmm_matrix):
        """Paper: recursion blocks full optimization; CUDA stays ahead."""
        gap = fmm_matrix[NEW_RT].cycles / fmm_matrix[CUDA].cycles
        assert gap > 1.10

    def test_residual_shared_state(self, fmm_matrix):
        """Fig. 11: MiniFMM keeps some runtime shared memory (~3KB),
        unlike the fully-folded apps."""
        omp = fmm_matrix[NEW_RT_NO_ASSUME].profile.shared_memory_bytes
        cuda = fmm_matrix[CUDA].profile.shared_memory_bytes
        assert omp > cuda
        assert 1500 < omp < 4000

    def test_recursion_not_inlined(self, fmm_matrix):
        module = fmm_matrix[NEW_RT].compiled.module
        assert "traverse" in module.functions
        assert not module.get_function("traverse").is_declaration
