"""App-internal pieces: input generators, references, device RNG."""

import numpy as np
import pytest

from repro.apps import gridmini, minifmm, rsbench, testsnap, xsbench
from repro.apps.common import lcg_rand01_host


class TestDeviceRNG:
    def test_host_reference_in_unit_interval(self):
        vals = lcg_rand01_host(np.arange(10000, dtype=np.int64))
        assert np.all(vals >= 0.0) and np.all(vals < 1.0)

    def test_reasonably_uniform(self):
        vals = lcg_rand01_host(np.arange(10000, dtype=np.int64))
        hist, _ = np.histogram(vals, bins=10, range=(0, 1))
        assert hist.min() > 500  # no empty decile

    def test_deterministic(self):
        a = lcg_rand01_host(np.arange(64, dtype=np.int64))
        b = lcg_rand01_host(np.arange(64, dtype=np.int64))
        assert np.array_equal(a, b)

    def test_device_matches_host(self):
        """The DSL rand01 and its NumPy mirror must agree bitwise."""
        from repro.frontend import ast as A
        from repro.frontend.driver import CompileOptions, compile_program
        from repro.ir.types import I64, PTR
        from repro.apps.common import lcg_rand01_function
        from repro.vgpu import VirtualGPU

        prog = A.Program("rng", kernels=[A.KernelDef(
            "rng", params=[A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"),
                             A.FuncCall("rand01", A.Var("iv")))],
        )], device_functions=[lcg_rand01_function()])
        compiled = compile_program(prog, CompileOptions(mode="cuda"))
        gpu = VirtualGPU(compiled.module)
        out = gpu.alloc_array(np.zeros(64))
        gpu.launch("rng", compiled.abi("rng").marshal(
            gpu, {"out": out, "n": 64}), 2, 32)
        got = gpu.read_array(out, np.float64, 64)
        assert np.array_equal(got, lcg_rand01_host(np.arange(64, dtype=np.int64)))


class TestXSBenchInputs:
    def test_energy_grids_sorted_and_bracketing(self):
        size = xsbench.default_size()
        egrids, xs_data, mats, concs = xsbench.make_inputs(size)
        assert np.all(np.diff(egrids, axis=1) >= 0)
        assert np.all(egrids[:, 0] == 0.0)
        assert np.all(egrids[:, -1] == 1.0)

    def test_material_indices_valid(self):
        size = xsbench.default_size()
        _, _, mats, _ = xsbench.make_inputs(size)
        assert mats.min() >= 0 and mats.max() < size["n_nuclides"]

    def test_reference_shape(self):
        size = {"n_lookups": 8, "n_nuclides": 4, "n_gridpoints": 8,
                "n_mats": 2, "nucs_per_mat": 2}
        out = xsbench.reference(size, *xsbench.make_inputs(size))
        assert out.shape == (8, xsbench.N_XS)
        assert np.all(out > 0)  # positive cross sections


class TestGridMiniInputs:
    def test_neighbors_wrap(self):
        size = {"n_sites": 16}
        _, _, neighbors = gridmini.make_inputs(size)
        assert neighbors.max() < 16 and neighbors.min() >= 0
        assert np.all(neighbors[:, 0] == (np.arange(16) + 1) % 16)

    def test_reference_linear_in_psi(self):
        size = {"n_sites": 8}
        links, psi, neighbors = gridmini.make_inputs(size)
        ref1 = gridmini.reference(size, links, psi, neighbors)
        ref2 = gridmini.reference(size, links, 2.0 * psi, neighbors)
        assert np.allclose(ref2, 2.0 * ref1)


class TestMiniFMMTree:
    def test_tree_structure(self):
        size = {"n_targets": 4, "depth": 3, "points_per_leaf": 2,
                "theta_x1000": 500}
        targets, centers, halves, moments, px, pm, nleaves, ppl = \
            minifmm.build_tree(size)
        assert nleaves == 8
        assert len(centers) == 2 * nleaves - 1
        # Root spans the whole domain; moments aggregate bottom-up.
        assert moments[0] == pytest.approx(pm.sum())
        assert centers[0] == pytest.approx(nleaves / 2)

    def test_points_sorted_by_leaf(self):
        size = {"n_targets": 4, "depth": 3, "points_per_leaf": 2,
                "theta_x1000": 500}
        _, _, _, _, px, _, nleaves, ppl = minifmm.build_tree(size)
        leaves = (px // 1).astype(int)
        assert np.all(np.diff(leaves) >= 0)

    def test_theta_zero_is_exact_n_body(self):
        """theta=0 disables the multipole acceptance: the traversal
        reduces to the direct particle sum."""
        size = {"n_targets": 8, "depth": 3, "points_per_leaf": 2,
                "theta_x1000": 0}
        targets, centers, halves, moments, px, pm, nleaves, ppl = \
            minifmm.build_tree(size)
        ref = minifmm.reference(size, targets, centers, halves, moments,
                                px, pm, nleaves, ppl)
        direct = np.array([
            np.sum(pm / (np.abs(px - t) + minifmm.EPS)) for t in targets
        ])
        assert np.allclose(ref, direct)


class TestTestSNAP:
    def test_forces_antisymmetric_in_pair_distance(self):
        """Moving a neighbour further reduces its force contribution."""
        size = {"n_atoms": 4, "n_neighbors": 1}
        pos, neighbors = testsnap.make_inputs(size)
        near = testsnap.reference(size, pos, neighbors)
        pos_far = pos.copy()
        pos_far[neighbors[0, 0]] += 10.0
        far = testsnap.reference(size, pos_far, neighbors)
        assert np.linalg.norm(far[0]) < np.linalg.norm(near[0])

    def test_rms_helper(self):
        from repro.frontend.driver import CompileOptions

        result = testsnap.run(CompileOptions(runtime="new"),
                              size={"n_atoms": 64, "n_neighbors": 2},
                              num_teams=2, threads_per_team=32)
        assert testsnap.rms_force_error(result) < 1e-12


class TestRSBench:
    def test_reference_finite(self):
        size = {"n_lookups": 8, "n_nuclides": 3, "n_poles": 3,
                "n_mats": 2, "nucs_per_mat": 2}
        out = rsbench.reference(size, *rsbench.make_inputs(size))
        assert np.all(np.isfinite(out))
