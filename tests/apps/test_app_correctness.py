"""Every proxy app must verify against its NumPy reference under every
build configuration (small problem sizes for speed)."""

import pytest

from repro.apps import gridmini, minifmm, rsbench, testsnap, xsbench
from repro.bench.builds import BUILD_ORDER, CUDA, build_options
from repro.frontend.driver import CompileOptions

SMALL = {
    "xsbench": {"n_lookups": 64, "n_nuclides": 6, "n_gridpoints": 16,
                "n_mats": 3, "nucs_per_mat": 2},
    "rsbench": {"n_lookups": 64, "n_nuclides": 4, "n_poles": 4,
                "n_mats": 3, "nucs_per_mat": 2},
    "gridmini": {"n_sites": 64},
    "testsnap": {"n_atoms": 64, "n_neighbors": 4},
    "minifmm": {"n_targets": 64, "depth": 3, "points_per_leaf": 2,
                "theta_x1000": 500},
}
APPS = {
    "xsbench": xsbench,
    "rsbench": rsbench,
    "gridmini": gridmini,
    "testsnap": testsnap,
    "minifmm": minifmm,
}
GEOMETRY = dict(num_teams=2, threads_per_team=32)


@pytest.mark.parametrize("app_name", list(APPS))
@pytest.mark.parametrize("build", BUILD_ORDER)
def test_app_verifies_under_build(app_name, build):
    app = APPS[app_name]
    options = build_options()[build]
    result = app.run(options, size=SMALL[app_name], **GEOMETRY)
    assert result.verified, (
        f"{app_name} under {build}: max error {result.max_error}"
    )


@pytest.mark.parametrize("app_name", list(APPS))
def test_results_bitwise_identical_across_builds(app_name):
    """All five builds run the same arithmetic in the same order —
    outputs must agree to the last bit, not just approximately."""
    app = APPS[app_name]
    errors = []
    for build, options in build_options().items():
        result = app.run(options, size=SMALL[app_name], **GEOMETRY)
        errors.append((build, result.max_error))
    assert all(err == 0.0 or err < 1e-12 for _, err in errors), errors


@pytest.mark.parametrize("app_name", list(APPS))
def test_debug_build_passes_own_assertions(app_name):
    """Running the debug build with checks on validates every runtime
    assertion and assumption along the way."""
    app = APPS[app_name]
    options = CompileOptions(runtime="new").with_debug()
    result = app.run(options, size=SMALL[app_name], debug_checks=True,
                     env={"DEBUG": 3}, **GEOMETRY)
    assert result.verified


@pytest.mark.parametrize("app_name", list(APPS))
def test_release_simulation_checks_assumptions(app_name):
    """Even release builds must not violate their own assumptions when
    the simulator verifies them (pre-strip they are checked during the
    O0 run)."""
    from repro.passes import PipelineConfig

    app = APPS[app_name]
    options = CompileOptions(runtime="new", pipeline=PipelineConfig.o0())
    result = app.run(options, size=SMALL[app_name], debug_checks=True,
                     **GEOMETRY)
    assert result.verified
