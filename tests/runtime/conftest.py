"""Helpers for driving the device runtimes from hand-built kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import (
    F64,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR,
    VOID,
    verify_module,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.interface import NEW_RUNTIME, OLD_RUNTIME, RuntimeInterface
from repro.vgpu import VirtualGPU


@pytest.fixture(params=["new", "old"], ids=["new-rt", "old-rt"])
def runtime(request) -> RuntimeInterface:
    return NEW_RUNTIME if request.param == "new" else OLD_RUNTIME


def build_runtime_module(rt: RuntimeInterface, config: RuntimeConfig = None) -> Module:
    module = Module(f"rt_{rt.name}")
    rt.populate(module, config or RuntimeConfig())
    return module


def add_saxpy_body(module: Module) -> Function:
    """Outlined loop body: y[iv] += a * x[iv], captures at args+0/8/16."""
    body = module.add_function(Function(
        "body", FunctionType(VOID, (I64, PTR)), linkage="internal",
        arg_names=["iv", "args"]))
    b = IRBuilder(module, body.add_block("entry"))
    iv, args = body.args
    x = b.load(PTR, b.ptradd(args, 0), "x")
    y = b.load(PTR, b.ptradd(args, 8), "y")
    a = b.load(F64, b.ptradd(args, 16), "a")
    xv = b.load(F64, b.array_gep(x, F64, iv))
    yv = b.load(F64, b.array_gep(y, F64, iv))
    b.store(b.fadd(yv, b.fmul(a, xv)), b.array_gep(y, F64, iv))
    b.ret()
    return body


def add_spmd_kernel(module: Module, rt: RuntimeInterface, body: Function,
                    name: str = "kern") -> Function:
    """SPMD kernel: init(1); captures; distribute_parallel_for; deinit."""
    kern = module.add_function(Function(
        name, FunctionType(VOID, (PTR, PTR, F64, I64)),
        arg_names=["x", "y", "a", "n"]))
    kern.attrs.add("kernel")
    b = IRBuilder(module, kern.add_block("entry"))
    r = b.call(module.get_function(rt.target_init), [b.i32(1)], "exec")
    work = kern.add_block("work")
    exit_ = kern.add_block("exit")
    b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
    b.set_insert_point(work)
    buf = b.call(module.get_function(rt.alloc_shared), [b.i64(24)], "captures")
    b.store(kern.args[0], b.ptradd(buf, 0))
    b.store(kern.args[1], b.ptradd(buf, 8))
    b.store(kern.args[2], b.ptradd(buf, 16))
    b.call(module.get_function(rt.distribute_parallel_for),
           [body, buf, kern.args[3]])
    b.call(module.get_function(rt.free_shared), [buf, b.i64(24)])
    b.call(module.get_function(rt.target_deinit), [b.i32(1)])
    b.br(exit_)
    b.set_insert_point(exit_)
    b.ret()
    return kern


def run_saxpy(module: Module, n=100, teams=2, threads=8, a=3.0,
              debug_checks=True, env=None):
    """Launch the saxpy kernel and return (profile, out, expected)."""
    verify_module(module)
    gpu = VirtualGPU(module, debug_checks=debug_checks, env=env)
    x = np.arange(n, dtype=np.float64)
    y = np.ones(n)
    px, py = gpu.alloc_array(x), gpu.alloc_array(y)
    profile = gpu.launch("kern", [px, py, a, n], teams, threads)
    out = gpu.read_array(py, np.float64, n)
    return profile, out, 1.0 + a * x
