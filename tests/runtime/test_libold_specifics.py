"""Old-runtime specifics: team-wide data stack, chunked dispatch, warp
records — the baseline behaviors the new runtime was designed away from."""

import numpy as np
import pytest

from repro.ir import (
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR,
    VOID,
    verify_module,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.interface import OLD_RUNTIME
from repro.runtime.libold.builder import (
    OFF_STACK_TOP,
    OLD_DATA_STACK_SIZE,
    OLD_TEAM_CONTEXT_SIZE,
)
from repro.vgpu import VirtualGPU
from tests.runtime.conftest import build_runtime_module


def spmd_kernel(module, rt, emit, params=(PTR,), arg_names=("out",)):
    kern = module.add_function(Function(
        "kern", FunctionType(VOID, tuple(params)), arg_names=list(arg_names)))
    kern.attrs.add("kernel")
    b = IRBuilder(module, kern.add_block("entry"))
    r = b.call(module.get_function(rt.target_init), [b.i32(1)], "exec")
    work = kern.add_block("work")
    exit_ = kern.add_block("exit")
    b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
    b.set_insert_point(work)
    emit(b, kern)
    b.call(module.get_function(rt.target_deinit), [b.i32(1)])
    b.br(exit_)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return kern


class TestOldDataStack:
    def test_footprint_matches_paper(self):
        """Old RT static shared usage ~2.3KB (Fig. 11)."""
        assert OLD_TEAM_CONTEXT_SIZE + OLD_DATA_STACK_SIZE == 2320

    def test_team_wide_bump_allocation(self):
        rt = OLD_RUNTIME
        module = build_runtime_module(rt)

        def emit(b, kern):
            p1 = b.call(module.get_function(rt.alloc_shared), [b.i64(32)], "p1")
            b.aligned_barrier()
            # All threads allocated from ONE team-wide stack: the top
            # advanced by nthreads * 32.
            from repro.runtime.state import GV_OLD_TEAM_CONTEXT

            ctx = module.get_global(GV_OLD_TEAM_CONTEXT)
            top = b.load(I32, b.ptradd(ctx, OFF_STACK_TOP))
            tid = b.sext(b.thread_id(), I64)
            b.store(b.sext(top, I64), b.array_gep(kern.args[0], I64, tid))
            b.call(module.get_function(rt.free_shared), [p1, b.i64(32)])

        spmd_kernel(module, rt, emit)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(4, dtype=np.int64))
        gpu.launch("kern", [out], 1, 4)
        tops = gpu.read_array(out, np.int64, 4)
        # Team-wide stack: the high-water top is nthreads * 32 (a
        # per-thread-slice scheme as in the new runtime would cap at 32;
        # the interleaved frees explain the descending tail).
        assert tops.max() == 4 * 32
        assert tops.min() >= 32

    def test_fallback_to_malloc_when_exhausted(self):
        rt = OLD_RUNTIME
        module = build_runtime_module(rt)

        def emit(b, kern):
            big = OLD_DATA_STACK_SIZE + 64
            p = b.call(module.get_function(rt.alloc_shared), [b.i64(big)], "p")
            space = b.lshr(b.cast("ptrtoint", p, I64), b.i64(48))
            b.store(space, kern.args[0])
            b.call(module.get_function(rt.free_shared), [p, b.i64(big)])

        spmd_kernel(module, rt, emit)
        gpu = VirtualGPU(module)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1)
        from repro.memory.addrspace import AddressSpace

        assert gpu.read_array(out, np.int64, 1)[0] == int(AddressSpace.GLOBAL)


class TestOldWorksharing:
    @pytest.mark.parametrize("n", [1, 31, 32, 33, 100, 256])
    def test_chunked_dispatch_partitions_exactly(self, n):
        """The split/chunked scheme must still cover each iteration once."""
        rt = OLD_RUNTIME
        module = build_runtime_module(rt)
        body = module.add_function(Function(
            "body", FunctionType(VOID, (I64, PTR)), linkage="internal"))
        b = IRBuilder(module, body.add_block("entry"))
        counts = b.load(PTR, b.ptradd(body.args[1], 0))
        b.atomic_rmw("add", b.array_gep(counts, I64, body.args[0]), b.i64(1))
        b.ret()

        def emit(bb, kern):
            buf = bb.call(module.get_function(rt.alloc_shared), [bb.i64(8)])
            bb.store(kern.args[0], bb.ptradd(buf, 0))
            bb.call(module.get_function(rt.distribute_parallel_for),
                    [body, buf, kern.args[1]])
            bb.call(module.get_function(rt.free_shared), [buf, bb.i64(8)])

        spmd_kernel(module, rt, emit, params=(PTR, I64), arg_names=("counts", "n"))
        gpu = VirtualGPU(module)
        counts = gpu.alloc_array(np.zeros(max(n, 1), dtype=np.int64))
        gpu.launch("kern", [counts, n], 2, 16)
        got = gpu.read_array(counts, np.int64, max(n, 1))
        expected = [1] * n + [0] * (max(n, 1) - n)
        assert list(got) == expected

    def test_old_scheme_uses_more_barriers_than_new(self):
        """The per-chunk barriers are the structural overhead the
        combined Fig.-5 scheme removes."""
        from repro.runtime.interface import NEW_RUNTIME
        from tests.runtime.conftest import add_saxpy_body, add_spmd_kernel, run_saxpy

        barriers = {}
        for rt in (OLD_RUNTIME, NEW_RUNTIME):
            module = build_runtime_module(rt)
            body = add_saxpy_body(module)
            add_spmd_kernel(module, rt, body)
            profile, out, expected = run_saxpy(module, n=256, teams=2, threads=8)
            assert np.allclose(out, expected)
            barriers[rt.name] = profile.barriers
        assert barriers["old"] > barriers["new"]


class TestOldWarpRecords:
    def test_eager_records_make_context_nonzero(self):
        """The old runtime writes per-warp ICV records at init — the
        state area is never the all-zero page the zero-deduction needs."""
        rt = OLD_RUNTIME
        module = build_runtime_module(rt)

        def emit(b, kern):
            pass

        spmd_kernel(module, rt, emit, params=(PTR,), arg_names=("unused",))
        gpu = VirtualGPU(module)
        unused = gpu.alloc_array(np.zeros(1))
        gpu.launch("kern", [unused], 1, 64)
        from repro.runtime.state import GV_OLD_TEAM_CONTEXT
        from repro.runtime.libold.builder import OFF_WARP_RECORDS

        ctx = module.get_global(GV_OLD_TEAM_CONTEXT)
        offset = gpu.global_addresses[ctx] & ((1 << 48) - 1)
        seg = gpu.memory.shared_segment(0)
        # Two warps of 32 -> two records with nthreads == 64 at +4.
        rec0 = seg.read_bytes(offset + OFF_WARP_RECORDS + 4, 4)
        rec1 = seg.read_bytes(offset + OFF_WARP_RECORDS + 8 + 4, 4)
        assert int.from_bytes(rec0, "little") == 64
        assert int.from_bytes(rec1, "little") == 64
