"""Execution semantics of both device runtimes (unoptimized)."""

import numpy as np
import pytest

from repro.ir import (
    F64,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR,
    VOID,
    verify_module,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.interface import NEW_RUNTIME, OLD_RUNTIME
from repro.vgpu import VirtualGPU
from tests.runtime.conftest import (
    add_saxpy_body,
    add_spmd_kernel,
    build_runtime_module,
    run_saxpy,
)


class TestSPMDWorksharing:
    def test_saxpy_correct(self, runtime):
        module = build_runtime_module(runtime)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, runtime, body)
        _, out, expected = run_saxpy(module, n=100, teams=2, threads=8)
        assert np.allclose(out, expected)

    def test_more_iterations_than_threads(self, runtime):
        module = build_runtime_module(runtime)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, runtime, body)
        _, out, expected = run_saxpy(module, n=333, teams=2, threads=8)
        assert np.allclose(out, expected)

    def test_fewer_iterations_than_threads(self, runtime):
        module = build_runtime_module(runtime)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, runtime, body)
        _, out, expected = run_saxpy(module, n=5, teams=2, threads=8)
        assert np.allclose(out, expected)

    def test_zero_iterations(self, runtime):
        module = build_runtime_module(runtime)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, runtime, body)
        _, out, _ = run_saxpy(module, n=0, teams=2, threads=8)
        # n=0 -> read_array returns empty; just ensure no crash
        assert out.shape == (0,)

    def test_every_iteration_exactly_once(self, runtime):
        """Worksharing must partition, not duplicate, iterations."""
        module = build_runtime_module(runtime)
        body = module.add_function(Function(
            "body", FunctionType(VOID, (I64, PTR)), linkage="internal"))
        b = IRBuilder(module, body.add_block("entry"))
        counts = b.load(PTR, b.ptradd(body.args[1], 0), "counts")
        b.atomic_rmw("add", b.array_gep(counts, I64, body.args[0]), b.i64(1))
        b.ret()
        kern = module.add_function(Function(
            "kern", FunctionType(VOID, (PTR, I64)), arg_names=["counts", "n"]))
        kern.attrs.add("kernel")
        rt = NEW_RUNTIME if "old" not in module.name else OLD_RUNTIME
        b = IRBuilder(module, kern.add_block("entry"))
        from repro.runtime.interface import RUNTIMES

        rt = RUNTIMES["old" if "old" in module.name else "new"]
        r = b.call(module.get_function(rt.target_init), [b.i32(1)], "exec")
        work = kern.add_block("work")
        exit_ = kern.add_block("exit")
        b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
        b.set_insert_point(work)
        buf = b.call(module.get_function(rt.alloc_shared), [b.i64(8)])
        b.store(kern.args[0], b.ptradd(buf, 0))
        b.call(module.get_function(rt.distribute_parallel_for),
               [body, buf, kern.args[1]])
        b.call(module.get_function(rt.free_shared), [buf, b.i64(8)])
        b.call(module.get_function(rt.target_deinit), [b.i32(1)])
        b.br(exit_)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(module)
        gpu = VirtualGPU(module, debug_checks=True)
        n = 77
        counts = gpu.alloc_array(np.zeros(n, dtype=np.int64))
        gpu.launch("kern", [counts, n], 3, 8)
        assert list(gpu.read_array(counts, np.int64, n)) == [1] * n


class TestGenericMode:
    def _generic_kernel(self, rt, config=None):
        module = build_runtime_module(rt, config)
        body = add_saxpy_body(module)
        par = module.add_function(Function(
            "par_fn", FunctionType(VOID, (I32, PTR)), linkage="internal",
            arg_names=["tid", "args"]))
        b = IRBuilder(module, par.add_block("entry"))
        n = b.load(I64, b.ptradd(par.args[1], 24), "n")
        b.call(module.get_function(rt.distribute_parallel_for),
               [body, par.args[1], n])
        b.ret()
        kern = module.add_function(Function(
            "kern", FunctionType(VOID, (PTR, PTR, F64, I64)),
            arg_names=["x", "y", "a", "n"]))
        kern.attrs.add("kernel")
        b = IRBuilder(module, kern.add_block("entry"))
        r = b.call(module.get_function(rt.target_init), [b.i32(0)], "exec")
        work = kern.add_block("work")
        exit_ = kern.add_block("exit")
        b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
        b.set_insert_point(work)
        buf = b.call(module.get_function(rt.alloc_shared), [b.i64(32)])
        for i in range(3):
            b.store(kern.args[i], b.ptradd(buf, 8 * i))
        b.store(kern.args[3], b.ptradd(buf, 24))
        b.call(module.get_function(rt.parallel), [par, buf])
        b.call(module.get_function(rt.free_shared), [buf, b.i64(32)])
        b.call(module.get_function(rt.target_deinit), [b.i32(0)])
        b.br(exit_)
        b.set_insert_point(exit_)
        b.ret()
        return module

    def test_state_machine_runs_parallel_region(self, runtime):
        module = self._generic_kernel(runtime)
        _, out, expected = run_saxpy(module, n=64, teams=2, threads=8)
        assert np.allclose(out, expected)

    def test_generic_without_parallel_region(self, runtime):
        """Sequential-only target region: workers wake once and exit."""
        module = build_runtime_module(runtime)
        kern = module.add_function(Function(
            "kern", FunctionType(VOID, (PTR,)), arg_names=["out"]))
        kern.attrs.add("kernel")
        b = IRBuilder(module, kern.add_block("entry"))
        r = b.call(module.get_function(runtime.target_init), [b.i32(0)], "exec")
        work = kern.add_block("work")
        exit_ = kern.add_block("exit")
        b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
        b.set_insert_point(work)
        b.store(b.i64(123), kern.args[0])
        b.call(module.get_function(runtime.target_deinit), [b.i32(0)])
        b.br(exit_)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(module)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 2, 8)
        assert gpu.read_array(out, np.int64, 1)[0] == 123

    def test_sequential_region_runs_once_per_team(self, runtime):
        module = build_runtime_module(runtime)
        kern = module.add_function(Function(
            "kern", FunctionType(VOID, (PTR,)), arg_names=["counter"]))
        kern.attrs.add("kernel")
        b = IRBuilder(module, kern.add_block("entry"))
        r = b.call(module.get_function(runtime.target_init), [b.i32(0)], "exec")
        work = kern.add_block("work")
        exit_ = kern.add_block("exit")
        b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
        b.set_insert_point(work)
        b.atomic_rmw("add", kern.args[0], b.i64(1))
        b.call(module.get_function(runtime.target_deinit), [b.i32(0)])
        b.br(exit_)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(module)
        gpu = VirtualGPU(module, debug_checks=True)
        counter = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [counter], 4, 8)
        # Only the main thread of each team executes the sequential part.
        assert gpu.read_array(counter, np.int64, 1)[0] == 4
