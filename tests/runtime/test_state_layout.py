"""ICV/team-state layout invariants the optimizer depends on."""

from repro.memory.layout import DATA_LAYOUT
from repro.runtime.config import RuntimeConfig
from repro.runtime.icv import ICV_DEFAULTS, ICV_STATE, icv_offset, icv_state_size
from repro.runtime.state import (
    TEAM_STATE,
    team_state_offset,
    team_state_size,
)


class TestICVLayout:
    def test_field_order_is_abi(self):
        # The field-sensitive access analysis bins by these offsets.
        assert icv_offset("nthreads_var") == 0
        assert icv_offset("levels_var") == 4
        assert icv_offset("active_levels_var") == 8
        assert icv_offset("max_active_levels_var") == 12
        assert icv_offset("run_sched_var") == 16
        assert icv_offset("run_sched_chunk_var") == 20

    def test_state_size(self):
        assert icv_state_size() == 24

    def test_defaults_cover_every_field(self):
        assert set(ICV_DEFAULTS) == {name for name, _ in ICV_STATE.fields}

    def test_levels_default_zero(self):
        assert ICV_DEFAULTS["levels_var"] == 0


class TestTeamStateLayout:
    def test_icvs_lead_the_struct(self):
        # A TeamState pointer doubles as an ICVState pointer (the
        # thread-state lookup relies on this).
        assert team_state_offset("icvs") == 0

    def test_pointer_fields_are_aligned(self):
        assert team_state_offset("parallel_region_fn") % 8 == 0
        assert team_state_offset("parallel_args") % 8 == 0

    def test_distinct_offsets(self):
        offsets = [team_state_offset(name) for name, _ in TEAM_STATE.fields]
        assert len(set(offsets)) == len(offsets)

    def test_size_is_aligned(self):
        assert team_state_size() % 8 == 0


class TestRuntimeConfig:
    def test_release_has_no_debug(self):
        assert not RuntimeConfig().debug_enabled

    def test_debug_mask(self):
        from repro.runtime.config import DEBUG_ASSERTIONS, DEBUG_FUNCTION_TRACING

        cfg = RuntimeConfig(debug_kind=DEBUG_ASSERTIONS | DEBUG_FUNCTION_TRACING)
        assert cfg.debug_enabled
        assert cfg.debug_kind & DEBUG_ASSERTIONS
        assert cfg.debug_kind & DEBUG_FUNCTION_TRACING

    def test_stack_slices_cover_all_threads(self):
        cfg = RuntimeConfig(max_threads=64, smem_stack_size=4096)
        assert cfg.stack_slice_size == 64
        assert cfg.stack_slice_size * cfg.max_threads <= cfg.smem_stack_size
