"""Overhead-counter category integrity (paper §III attribution).

Every runtime entry point of both device runtimes must map to exactly
one overhead category, so the per-construct counters (and everything
built on them: trace export, ``bench micro``, ``LaunchResult.
profile_summary``) can never silently drop runtime cost.  The pinning
works in both directions: a new runtime function added without a
category fails here, and a category entry naming a function the
runtime no longer defines fails too.
"""

from __future__ import annotations

import pytest

from repro.runtime.libnew import NEW_RT_OVERHEAD_CATEGORIES, NEW_RUNTIME_API
from repro.runtime.libold import OLD_RT_OVERHEAD_CATEGORIES, OLD_RUNTIME_API
from repro.trace.categories import (
    CATEGORY_NAMES,
    OVERHEAD_CATEGORIES,
    runtime_category,
)

#: The paper's §III vocabulary; adding a category is fine, but do it
#: here deliberately (docs, trace export and bench micro key on it).
EXPECTED_CATEGORIES = (
    "icv_query",
    "parallel_region",
    "shared_stack",
    "sync",
    "target_init",
    "thread_state",
    "worksharing",
)

#: Prefixes that identify runtime entry points among a compiled
#: module's defined functions (``__omp_outlined*`` are app outlines).
RUNTIME_PREFIXES = ("__kmpc_", "omp_", "__omp_")


def _defined_runtime_functions(runtime: str):
    from repro.bench.micro import build_micro_program, runtime_options
    from repro.toolchain.service import ToolchainSession

    compiled = ToolchainSession().compile(
        build_micro_program([1]), runtime_options(runtime)
    )
    return sorted(
        name
        for name, fn in compiled.module.functions.items()
        if fn.blocks
        and name.startswith(RUNTIME_PREFIXES)
        and not name.startswith("__omp_outlined")
    )


class TestCategoryVocabulary:
    def test_category_names_are_the_paper_vocabulary(self):
        assert CATEGORY_NAMES == EXPECTED_CATEGORIES

    def test_every_category_value_is_in_the_vocabulary(self):
        assert set(OVERHEAD_CATEGORIES.values()) <= set(CATEGORY_NAMES)

    def test_runtime_flavours_never_collide(self):
        # Merging must be lossless: old-RT names all carry the _old
        # suffix, so the two dicts are disjoint by construction.
        overlap = set(NEW_RT_OVERHEAD_CATEGORIES) & set(OLD_RT_OVERHEAD_CATEGORIES)
        assert not overlap
        assert len(OVERHEAD_CATEGORIES) == (
            len(NEW_RT_OVERHEAD_CATEGORIES) + len(OLD_RT_OVERHEAD_CATEGORIES)
        )


class TestDeclaredAPICoverage:
    def test_every_new_rt_api_function_is_categorized(self):
        missing = [f for f in NEW_RUNTIME_API if f not in NEW_RT_OVERHEAD_CATEGORIES]
        assert not missing, f"uncategorized new-RT entry points: {missing}"

    def test_every_old_rt_api_function_is_categorized(self):
        missing = [f for f in OLD_RUNTIME_API if f not in OLD_RT_OVERHEAD_CATEGORIES]
        assert not missing, f"uncategorized old-RT entry points: {missing}"


class TestCompiledModuleCoverage:
    """The strong form: scan what a compiled module actually defines.

    This is what fails when someone adds a new internal runtime helper
    (categorized calls are counted by callee name at executed call
    sites, so an uncategorized helper would silently leak its cycles
    out of the §III attribution).
    """

    @pytest.mark.parametrize("runtime", ["newrt", "oldrt"])
    def test_every_defined_runtime_function_is_categorized(self, runtime):
        uncategorized = [
            name
            for name in _defined_runtime_functions(runtime)
            if runtime_category(name) is None
        ]
        assert not uncategorized, (
            f"{runtime} defines uncategorized runtime functions "
            f"{uncategorized}; add them to the OVERHEAD_CATEGORIES dict "
            "next to the runtime builder"
        )

    @pytest.mark.parametrize(
        "runtime, table",
        [("newrt", NEW_RT_OVERHEAD_CATEGORIES),
         ("oldrt", OLD_RT_OVERHEAD_CATEGORIES)],
    )
    def test_every_categorized_function_is_defined(self, runtime, table):
        defined = set(_defined_runtime_functions(runtime))
        stale = [name for name in table if name not in defined]
        assert not stale, (
            f"{runtime} categorizes functions it no longer defines: {stale}"
        )
