"""§III-G: debug builds check, release builds carry zero overhead."""

import numpy as np
import pytest

from repro.ir import I64, PTR, VOID, Function, FunctionType, IRBuilder, verify_module
from repro.runtime.common import RuntimeBuilder
from repro.runtime.config import (
    DEBUG_ASSERTIONS,
    DEBUG_FUNCTION_TRACING,
    RuntimeConfig,
)
from repro.runtime.interface import NEW_RUNTIME
from repro.vgpu import TrapError, VirtualGPU
from tests.runtime.conftest import (
    add_saxpy_body,
    add_spmd_kernel,
    build_runtime_module,
    run_saxpy,
)


def assert_kernel(module, config, cond_value: int):
    """Kernel with one runtime assertion comparing its arg to 42."""
    rb = RuntimeBuilder(module, config)
    kern = module.add_function(Function(
        "kern", FunctionType(VOID, (I64,)), arg_names=["x"]))
    kern.attrs.add("kernel")
    b = IRBuilder(module, kern.add_block("entry"))
    rb.emit_assert(b, b.icmp("eq", kern.args[0], b.i64(42)), "x must be 42")
    b.ret()
    verify_module(module)
    return kern


class TestAssertions:
    def test_debug_build_traps_on_failure(self, module):
        config = RuntimeConfig(debug_kind=DEBUG_ASSERTIONS)
        assert_kernel(module, config, 7)
        gpu = VirtualGPU(module, env={"DEBUG": DEBUG_ASSERTIONS})
        with pytest.raises(TrapError, match="x must be 42"):
            gpu.launch("kern", [7], 1, 1)

    def test_debug_build_passes_when_true(self, module):
        config = RuntimeConfig(debug_kind=DEBUG_ASSERTIONS)
        assert_kernel(module, config, 42)
        gpu = VirtualGPU(module, env={"DEBUG": DEBUG_ASSERTIONS})
        gpu.launch("kern", [42], 1, 1)

    def test_debug_build_inactive_without_env(self, module):
        """Compiled in but not activated at runtime (the paper's
        compile-time flag + environment-variable activation)."""
        config = RuntimeConfig(debug_kind=DEBUG_ASSERTIONS)
        assert_kernel(module, config, 7)
        gpu = VirtualGPU(module)  # no DEBUG env
        gpu.launch("kern", [7], 1, 1)  # check skipped

    def test_release_build_never_checks(self, module):
        config = RuntimeConfig(debug_kind=0)
        assert_kernel(module, config, 7)
        gpu = VirtualGPU(module, env={"DEBUG": DEBUG_ASSERTIONS})
        gpu.launch("kern", [7], 1, 1)

    def test_release_assertion_becomes_assumption(self, module):
        """In release the condition is an llvm.assume — visible to the
        optimizer, checkable by the simulator's assumption mode."""
        from repro.vgpu import AssumptionViolation

        config = RuntimeConfig(debug_kind=0)
        assert_kernel(module, config, 7)
        gpu = VirtualGPU(module, debug_checks=True)
        with pytest.raises(AssumptionViolation):
            gpu.launch("kern", [7], 1, 1)


class TestTracing:
    def test_tracing_logs_runtime_calls(self):
        config = RuntimeConfig(debug_kind=DEBUG_FUNCTION_TRACING)
        module = build_runtime_module(NEW_RUNTIME, config)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, NEW_RUNTIME, body)
        verify_module(module)
        gpu = VirtualGPU(module, env={"DEBUG": DEBUG_FUNCTION_TRACING})
        import numpy as np

        x = gpu.alloc_array(np.zeros(8))
        y = gpu.alloc_array(np.zeros(8))
        profile = gpu.launch("kern", [x, y, 1.0, 8], 1, 4)
        assert "__kmpc_target_init" in profile.output
        assert "__kmpc_alloc_shared" in profile.output

    def test_tracing_silent_without_env(self):
        config = RuntimeConfig(debug_kind=DEBUG_FUNCTION_TRACING)
        module = build_runtime_module(NEW_RUNTIME, config)
        body = add_saxpy_body(module)
        add_spmd_kernel(module, NEW_RUNTIME, body)
        gpu = VirtualGPU(module)
        import numpy as np

        x = gpu.alloc_array(np.zeros(8))
        y = gpu.alloc_array(np.zeros(8))
        profile = gpu.launch("kern", [x, y, 1.0, 8], 1, 4)
        assert profile.output == []

    def test_release_build_has_no_trace_code(self):
        """Release runtime must not even contain tracing call sites."""
        module = build_runtime_module(NEW_RUNTIME, RuntimeConfig(debug_kind=0))
        from repro.ir.instructions import Call

        for func in module.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, Call) and inst.callee is not None:
                    assert inst.callee.name != "rt.print_str"


class TestDebugOverheadElimination:
    def test_debug_paths_statically_removed_in_release(self):
        """§III-G: with debug compiled out, optimization removes every
        debug code path from the binary."""
        from repro.passes import PipelineConfig, run_openmp_opt_pipeline

        release = build_runtime_module(NEW_RUNTIME, RuntimeConfig(debug_kind=0))
        body = add_saxpy_body(release)
        add_spmd_kernel(release, NEW_RUNTIME, body)
        run_openmp_opt_pipeline(release, PipelineConfig())
        kern = release.get_function("kern")
        text_insts = sum(1 for _ in kern.instructions())

        debug = build_runtime_module(
            NEW_RUNTIME,
            RuntimeConfig(debug_kind=DEBUG_ASSERTIONS | DEBUG_FUNCTION_TRACING),
        )
        body_d = add_saxpy_body(debug)
        add_spmd_kernel(debug, NEW_RUNTIME, body_d)
        run_openmp_opt_pipeline(debug, PipelineConfig())
        kern_d = debug.get_function("kern")
        debug_insts = sum(1 for _ in kern_d.instructions())

        # The debug build retains its checks; release is strictly leaner.
        assert text_insts < debug_insts

    def test_debug_and_release_compute_same_result(self):
        for kind in (0, DEBUG_ASSERTIONS | DEBUG_FUNCTION_TRACING):
            module = build_runtime_module(NEW_RUNTIME, RuntimeConfig(debug_kind=kind))
            body = add_saxpy_body(module)
            add_spmd_kernel(module, NEW_RUNTIME, body)
            _, out, expected = run_saxpy(module, n=32, teams=1, threads=8,
                                         debug_checks=False)
            assert np.allclose(out, expected)
