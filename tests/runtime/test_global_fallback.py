"""S3: the shared-stack -> global-malloc fallback path (paper §III-D).

Both device runtimes fall back to ``malloc`` when a team's shared
stack cannot satisfy an ``alloc_shared`` request.  Driving that path
through a real workload used to be impossible to arrange (the test
kernels never overflow the stack); the ``shared_stack_exhaust`` fault
site makes it routine: the runtime's own stack-top is pinned at
"full", every alloc takes the fallback, and the app must *still*
compute bit-correct results — degraded, not broken.
"""

import pytest

from repro.apps import testsnap
from repro.frontend.driver import CompileOptions, Target
from repro.passes.pass_manager import PipelineConfig
from repro.vgpu.config import ENGINES

pytestmark = pytest.mark.faults

# Small grid; -O0 keeps the alloc_shared runtime calls outlined (the
# optimized pipelines eliminate them, which is the paper's whole point).
SIZE = {"n_atoms": 64, "n_neighbors": 4}
GEOMETRY = dict(num_teams=2, threads_per_team=32)

TARGETS = {"new-rt": Target.OPENMP_NEW, "old-rt": Target.OPENMP_OLD}


def _run(target, **kwargs):
    options = CompileOptions(target, pipeline=PipelineConfig.o0())
    return testsnap.run(options, size=SIZE, **GEOMETRY, **kwargs)


@pytest.mark.parametrize("target", TARGETS.values(), ids=TARGETS.keys())
@pytest.mark.parametrize("engine", ENGINES)
def test_exhausted_stack_takes_the_fallback_and_stays_correct(target, engine):
    baseline = _run(target, engine=engine)
    exhausted = _run(target, engine=engine, faults="shared_stack_exhaust")
    # Strictly more mallocs than the build's natural count (the legacy
    # runtime mallocs a little even unexhausted; the new one none).
    assert exhausted.profile.device_mallocs > baseline.profile.device_mallocs, \
        "fallback never taken"
    assert exhausted.verified, \
        f"fallback corrupted results: {exhausted.max_error}"


def test_new_runtime_never_mallocs_unexhausted():
    # §III: the co-designed runtime serves every alloc_shared from the
    # team-local stack unless it genuinely overflows.
    result = _run(Target.OPENMP_NEW)
    assert result.profile.device_mallocs == 0
    assert result.verified


def test_fallback_count_is_engine_identical():
    counts = {
        engine: _run(Target.OPENMP_NEW, engine=engine,
                     faults="shared_stack_exhaust").profile.device_mallocs
        for engine in ENGINES
    }
    assert len(set(counts.values())) == 1, counts


def test_fallback_shows_up_in_the_overhead_counters():
    profile = _run(Target.OPENMP_NEW, faults="shared_stack_exhaust").profile
    assert profile.overhead_counters()["global_fallback.mallocs"] > 0
