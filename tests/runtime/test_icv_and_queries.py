"""ICV semantics: queries, nested parallelism, on-demand thread states."""

import numpy as np
import pytest

from repro.ir import (
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    PTR,
    VOID,
    verify_module,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.interface import NEW_RUNTIME
from repro.vgpu import VirtualGPU
from tests.runtime.conftest import build_runtime_module


def spmd_kernel_calling(module, rt, emit, params=(PTR,), arg_names=("out",)):
    """SPMD kernel skeleton; `emit(b, kern)` fills the work region."""
    kern = module.add_function(Function(
        "kern", FunctionType(VOID, tuple(params)), arg_names=list(arg_names)))
    kern.attrs.add("kernel")
    b = IRBuilder(module, kern.add_block("entry"))
    r = b.call(module.get_function(rt.target_init), [b.i32(1)], "exec")
    work = kern.add_block("work")
    exit_ = kern.add_block("exit")
    b.cond_br(b.icmp("ne", r, b.i32(0)), exit_, work)
    b.set_insert_point(work)
    emit(b, kern)
    b.call(module.get_function(rt.target_deinit), [b.i32(1)])
    b.br(exit_)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return kern


class TestQueriesOutsideParallel:
    def test_team_queries(self, runtime):
        module = build_runtime_module(runtime)

        def emit(b, kern):
            team = b.call(module.get_function(runtime.get_team_num), [])
            nteams = b.call(module.get_function(runtime.get_num_teams), [])
            packed = b.add(b.mul(nteams, b.i32(100)), team)
            idx = b.sext(b.call(module.get_function(runtime.get_team_num), []), I64)
            b.store(b.sext(packed, I64), b.array_gep(kern.args[0], I64, idx))

        spmd_kernel_calling(module, runtime, emit)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(3, dtype=np.int64))
        gpu.launch("kern", [out], 3, 4)
        assert list(gpu.read_array(out, np.int64, 3)) == [300, 301, 302]

    def test_num_threads_is_one_outside_parallel(self, runtime):
        module = build_runtime_module(runtime)

        def emit(b, kern):
            nt = b.call(module.get_function(runtime.get_num_threads), [])
            tn = b.call(module.get_function(runtime.get_thread_num), [])
            b.atomic_rmw("max", kern.args[0], b.sext(nt, I64))
            b.atomic_rmw("max", b.ptradd(kern.args[0], 8), b.sext(tn, I64))

        spmd_kernel_calling(module, runtime, emit)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(2, dtype=np.int64))
        gpu.launch("kern", [out], 1, 8)
        got = gpu.read_array(out, np.int64, 2)
        assert got[0] == 1  # omp_get_num_threads() == 1 sequentially
        assert got[1] == 0  # omp_get_thread_num() == 0 sequentially


class TestQueriesInsideParallel:
    def _parallel_query_kernel(self, rt):
        module = build_runtime_module(rt)
        par = module.add_function(Function(
            "par_fn", FunctionType(VOID, (I32, PTR)), linkage="internal",
            arg_names=["tid", "args"]))
        b = IRBuilder(module, par.add_block("entry"))
        out = b.load(PTR, b.ptradd(par.args[1], 0), "out")
        nt = b.call(module.get_function(rt.get_num_threads), [])
        tn = b.call(module.get_function(rt.get_thread_num), [])
        b.atomic_rmw("max", out, b.sext(nt, I64))
        b.atomic_rmw("max", b.ptradd(out, 8), b.sext(tn, I64))
        b.ret()

        def emit(builder, kern):
            buf = builder.call(module.get_function(rt.alloc_shared), [builder.i64(8)])
            builder.store(kern.args[0], builder.ptradd(buf, 0))
            builder.call(module.get_function(rt.parallel), [par, buf])
            builder.call(module.get_function(rt.free_shared), [buf, builder.i64(8)])

        spmd_kernel_calling(module, rt, emit)
        return module

    def test_num_threads_inside_parallel(self, runtime):
        module = self._parallel_query_kernel(runtime)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(2, dtype=np.int64))
        gpu.launch("kern", [out], 1, 8)
        got = gpu.read_array(out, np.int64, 2)
        assert got[0] == 8  # full team inside parallel
        assert got[1] == 7  # max thread id


class TestNestedParallel:
    def _nested_kernel(self):
        rt = NEW_RUNTIME
        module = build_runtime_module(rt)
        inner = module.add_function(Function(
            "inner", FunctionType(VOID, (I32, PTR)), linkage="internal"))
        b = IRBuilder(module, inner.add_block("entry"))
        out = b.load(PTR, b.ptradd(inner.args[1], 0), "out")
        b.atomic_rmw("add", out, b.i32(1))
        lvl = b.call(module.get_function("omp_get_level"), [])
        b.atomic_rmw("max", b.ptradd(out, 8), lvl)
        nt = b.call(module.get_function(rt.get_num_threads), [])
        b.atomic_rmw("max", b.ptradd(out, 16), nt)
        b.ret()
        outer = module.add_function(Function(
            "outer", FunctionType(VOID, (I32, PTR)), linkage="internal"))
        b = IRBuilder(module, outer.add_block("entry"))
        b.call(module.get_function(rt.parallel), [inner, outer.args[1]])
        b.ret()

        def emit(builder, kern):
            buf = builder.call(module.get_function(rt.alloc_shared), [builder.i64(8)])
            builder.store(kern.args[0], builder.ptradd(buf, 0))
            builder.call(module.get_function(rt.parallel), [outer, buf])
            builder.call(module.get_function(rt.free_shared), [buf, builder.i64(8)])

        spmd_kernel_calling(module, rt, emit)
        return module

    def test_nested_region_serializes(self):
        module = self._nested_kernel()
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(6, dtype=np.int32))
        gpu.launch("kern", [out], 1, 8)
        got = gpu.read_array(out, np.int32, 6)
        assert got[0] == 8   # inner executed once per outer thread
        assert got[2] == 2   # omp_get_level() saw depth 2
        assert got[4] == 1   # nested team size is 1 (serialized)

    def test_thread_states_cleaned_up(self):
        """After the nested regions, thread-state slots must be NULL
        again (pop restored them)."""
        module = self._nested_kernel()
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(6, dtype=np.int32))
        gpu.launch("kern", [out], 1, 4)
        from repro.runtime.state import GV_THREAD_STATES

        gv = module.get_global(GV_THREAD_STATES)
        addr = gpu.global_addresses[gv]
        raw = gpu.memory.shared_segment(0).read_bytes(
            addr & ((1 << 48) - 1), 4 * 8)
        assert raw == b"\x00" * 32


class TestSharedMemoryStack:
    def test_lifo_alloc_free(self):
        rt = NEW_RUNTIME
        module = build_runtime_module(rt)

        def emit(b, kern):
            p1 = b.call(module.get_function(rt.alloc_shared), [b.i64(16)], "p1")
            p2 = b.call(module.get_function(rt.alloc_shared), [b.i64(16)], "p2")
            b.call(module.get_function(rt.free_shared), [p2, b.i64(16)])
            p3 = b.call(module.get_function(rt.alloc_shared), [b.i64(16)], "p3")
            # LIFO: p3 must reuse p2's slot.
            same = b.icmp("eq", b.cast("ptrtoint", p2, I64), b.cast("ptrtoint", p3, I64))
            b.store(b.zext(same, I64), kern.args[0])
            b.call(module.get_function(rt.free_shared), [p3, b.i64(16)])
            b.call(module.get_function(rt.free_shared), [p1, b.i64(16)])

        spmd_kernel_calling(module, rt, emit)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1)
        assert gpu.read_array(out, np.int64, 1)[0] == 1

    def test_fallback_to_global_malloc_when_slice_full(self):
        rt = NEW_RUNTIME
        config = RuntimeConfig(max_threads=128, smem_stack_size=1280)  # 10B slices
        module = build_runtime_module(rt, config)

        def emit(b, kern):
            p = b.call(module.get_function(rt.alloc_shared), [b.i64(64)], "p")
            # A 64B request cannot fit a 10B slice: must be global memory.
            space = b.lshr(b.cast("ptrtoint", p, I64), b.i64(48))
            b.store(space, kern.args[0])
            b.call(module.get_function(rt.free_shared), [p, b.i64(64)])

        spmd_kernel_calling(module, rt, emit)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(1, dtype=np.int64))
        gpu.launch("kern", [out], 1, 1)
        from repro.memory.addrspace import AddressSpace

        assert gpu.read_array(out, np.int64, 1)[0] == int(AddressSpace.GLOBAL)

    def test_slices_are_thread_private(self):
        rt = NEW_RUNTIME
        module = build_runtime_module(rt)

        def emit(b, kern):
            p = b.call(module.get_function(rt.alloc_shared), [b.i64(8)], "p")
            tid = b.sext(b.thread_id(), I64)
            b.store(tid, p)
            b.aligned_barrier()
            v = b.load(I64, p)
            b.store(v, b.array_gep(kern.args[0], I64, tid))
            b.call(module.get_function(rt.free_shared), [p, b.i64(8)])

        spmd_kernel_calling(module, rt, emit)
        gpu = VirtualGPU(module, debug_checks=True)
        out = gpu.alloc_array(np.zeros(8, dtype=np.int64))
        gpu.launch("kern", [out], 1, 8)
        assert list(gpu.read_array(out, np.int64, 8)) == list(range(8))
