"""Simulated memory segments and scalar encoding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.addrspace import AddressSpace, make_pointer
from repro.memory.memmodel import (
    MemoryError_,
    MemorySystem,
    Segment,
    decode_scalar,
    encode_scalar,
    scalar_size,
)
from repro.ir.types import F32, F64, I8, I16, I32, I64, IntType, PTR


class TestScalarCodec:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_i32_roundtrip(self, v):
        assert decode_scalar(encode_scalar(v, I32), I32) == v

    @given(st.floats(allow_nan=False, allow_infinity=True, width=64))
    def test_f64_roundtrip(self, v):
        assert decode_scalar(encode_scalar(v, F64), F64) == v

    def test_f64_nan_roundtrip(self):
        out = decode_scalar(encode_scalar(float("nan"), F64), F64)
        assert math.isnan(out)

    @given(st.sampled_from([I8, I16, I32, I64]), st.integers())
    def test_int_wraps_to_width(self, ty, v):
        raw = encode_scalar(v, ty)
        assert len(raw) == scalar_size(ty)
        assert decode_scalar(raw, ty) == ty.wrap(v)

    def test_pointer_encoding(self):
        ptr = make_pointer(AddressSpace.SHARED, 0x1234)
        assert decode_scalar(encode_scalar(ptr, PTR), PTR) == ptr

    def test_little_endian(self):
        assert encode_scalar(0x01020304, I32) == bytes([4, 3, 2, 1])


class TestSegment:
    def test_zero_initialized(self):
        seg = Segment(AddressSpace.GLOBAL, 1024)
        assert seg.read_bytes(100, 8) == b"\x00" * 8

    def test_allocate_is_aligned(self):
        seg = Segment(AddressSpace.GLOBAL, 1024)
        seg.allocate(3, align=1)
        ptr = seg.allocate(8, align=8)
        from repro.memory.addrspace import pointer_offset

        assert pointer_offset(ptr) % 8 == 0

    def test_exhaustion(self):
        seg = Segment(AddressSpace.SHARED, 64)
        with pytest.raises(MemoryError_):
            seg.allocate(1024)

    def test_bounds_checked(self):
        seg = Segment(AddressSpace.GLOBAL, 64)
        with pytest.raises(MemoryError_):
            seg.read_bytes(60, 8)
        with pytest.raises(MemoryError_):
            seg.write_bytes(-1, b"x")

    def test_write_read(self):
        seg = Segment(AddressSpace.GLOBAL, 64)
        seg.write_bytes(8, b"hello")
        assert seg.read_bytes(8, 5) == b"hello"


class TestMemorySystem:
    def test_shared_segments_are_per_team(self):
        mem = MemorySystem()
        ptr = mem.reserve_shared_layout(8)
        mem.store(ptr, 111, I64, team=0)
        mem.store(ptr, 222, I64, team=1)
        assert mem.load(ptr, I64, team=0) == 111
        assert mem.load(ptr, I64, team=1) == 222

    def test_local_segments_are_per_thread(self):
        mem = MemorySystem()
        seg0 = mem.local_segment(0, 0)
        seg1 = mem.local_segment(0, 1)
        ptr0 = seg0.allocate(8)
        seg1.allocate(8)
        mem.store(ptr0, 5, I64, team=0, thread=0)
        assert mem.load(ptr0, I64, team=0, thread=0) == 5
        assert mem.load(ptr0, I64, team=0, thread=1) == 0

    def test_global_visible_everywhere(self):
        mem = MemorySystem()
        ptr = mem.malloc(16)
        mem.store(ptr, 3.5, F64, team=0, thread=0)
        assert mem.load(ptr, F64, team=7, thread=3) == 3.5

    def test_null_dereference_rejected(self):
        mem = MemorySystem()
        with pytest.raises(MemoryError_):
            mem.load(make_pointer(AddressSpace.GLOBAL, 0), I32)

    def test_memset_memcpy(self):
        mem = MemorySystem()
        a = mem.malloc(16)
        b = mem.malloc(16)
        mem.memset(a, 0xAB, 16)
        mem.memcpy(b, a, 16)
        assert mem.read_raw(b, 16) == b"\xab" * 16

    def test_reserve_shared_layout_applies_to_existing_teams(self):
        mem = MemorySystem()
        mem.shared_segment(0)  # create team segment first
        ptr = mem.reserve_shared_layout(64)
        seg = mem.shared_segment(0)
        # Dynamic allocation must not overlap the reserved region.
        dyn = seg.allocate(8)
        from repro.memory.addrspace import pointer_offset

        assert pointer_offset(dyn) >= pointer_offset(ptr) + 64

    def test_free_is_bookkeeping_only(self):
        mem = MemorySystem()
        ptr = mem.malloc(8)
        mem.store(ptr, 7, I64)
        mem.free(ptr)
        assert mem.load(ptr, I64) == 7  # space not recycled
