"""Tagged-pointer encoding and address-space properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.addrspace import (
    OFFSET_MASK,
    AddressSpace,
    make_pointer,
    pointer_offset,
    pointer_space,
)

spaces = st.sampled_from(list(AddressSpace))
offsets = st.integers(min_value=0, max_value=OFFSET_MASK)


class TestPointerEncoding:
    @given(spaces, offsets)
    def test_roundtrip(self, space, offset):
        ptr = make_pointer(space, offset)
        assert pointer_space(ptr) is space
        assert pointer_offset(ptr) == offset

    @given(spaces, offsets, st.integers(min_value=0, max_value=1 << 20))
    def test_arithmetic_preserves_space(self, space, offset, delta):
        if offset + delta > OFFSET_MASK:
            delta = 0
        ptr = make_pointer(space, offset) + delta
        assert pointer_space(ptr) is space
        assert pointer_offset(ptr) == offset + delta

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_pointer(AddressSpace.GLOBAL, -1)
        with pytest.raises(ValueError):
            make_pointer(AddressSpace.GLOBAL, OFFSET_MASK + 1)


class TestSpaceProperties:
    def test_locality_flags(self):
        assert AddressSpace.SHARED.is_team_local
        assert not AddressSpace.SHARED.is_thread_local
        assert AddressSpace.LOCAL.is_thread_local
        assert not AddressSpace.GLOBAL.is_team_local

    def test_short_names(self):
        assert AddressSpace.GLOBAL.short_name == "global"
        assert AddressSpace.SHARED.short_name == "shared"

    def test_nvptx_numbering(self):
        assert int(AddressSpace.SHARED) == 3
        assert int(AddressSpace.LOCAL) == 5
