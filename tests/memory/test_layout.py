"""DataLayout: sizes, alignment, struct offsets."""

import pytest

from repro.memory.layout import DATA_LAYOUT, DataLayout
from repro.ir.types import (
    ArrayType,
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    StructType,
    VOID,
)


class TestScalars:
    def test_sizes(self):
        assert DATA_LAYOUT.size_of(I1) == 1
        assert DATA_LAYOUT.size_of(I8) == 1
        assert DATA_LAYOUT.size_of(I16) == 2
        assert DATA_LAYOUT.size_of(I32) == 4
        assert DATA_LAYOUT.size_of(I64) == 8
        assert DATA_LAYOUT.size_of(F32) == 4
        assert DATA_LAYOUT.size_of(F64) == 8
        assert DATA_LAYOUT.size_of(PTR) == 8

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            DATA_LAYOUT.size_of(VOID)


class TestStructLayout:
    def test_natural_alignment_with_padding(self):
        # C ABI: i32 at 0, f64 padded to 8, total 16.
        sty = StructType("S", (("a", I32), ("b", F64)))
        layout = DATA_LAYOUT.struct_layout(sty)
        assert layout.offsets == (0, 8)
        assert layout.size == 16
        assert layout.align == 8

    def test_tail_padding(self):
        sty = StructType("T", (("a", F64), ("b", I32)))
        layout = DATA_LAYOUT.struct_layout(sty)
        assert layout.offsets == (0, 8)
        assert layout.size == 16  # rounded up to align 8

    def test_packed_small_fields(self):
        sty = StructType("U", (("a", I8), ("b", I8), ("c", I16)))
        layout = DATA_LAYOUT.struct_layout(sty)
        assert layout.offsets == (0, 1, 2)
        assert layout.size == 4

    def test_nested_struct(self):
        inner = StructType("Inner", (("x", I32), ("y", I32)))
        outer = StructType("Outer", (("p", I8), ("q", inner)))
        layout = DATA_LAYOUT.struct_layout(outer)
        assert layout.offsets == (0, 4)
        assert layout.size == 12

    def test_field_offset_by_name(self):
        sty = StructType("S", (("a", I32), ("b", F64)))
        assert DATA_LAYOUT.field_offset(sty, "b") == 8

    def test_empty_struct(self):
        sty = StructType("E", ())
        assert DATA_LAYOUT.size_of(sty) == 0

    def test_layout_cached(self):
        dl = DataLayout()
        sty = StructType("S", (("a", I32),))
        assert dl.struct_layout(sty) is dl.struct_layout(sty)


class TestArrays:
    def test_array_size(self):
        assert DATA_LAYOUT.size_of(ArrayType(F64, 10)) == 80
        assert DATA_LAYOUT.size_of(ArrayType(I8, 3)) == 3

    def test_element_offset(self):
        ty = ArrayType(I32, 8)
        assert DATA_LAYOUT.element_offset(ty, 3) == 12

    def test_array_of_structs(self):
        sty = StructType("S", (("a", I32), ("b", F64)))
        assert DATA_LAYOUT.size_of(ArrayType(sty, 4)) == 64
