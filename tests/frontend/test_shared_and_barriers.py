"""User shared memory and barriers through the DSL, in both lowerings."""

import numpy as np
import pytest

from repro.ir.types import F64, I64, PTR
from repro.frontend import ast as A
from repro.frontend.driver import CompileOptions, compile_program
from repro.vgpu import VirtualGPU

MODES = {
    "cuda": CompileOptions(mode="cuda"),
    "omp-new": CompileOptions(runtime="new"),
    "omp-old": CompileOptions(runtime="old"),
}


def tile_reverse_program():
    """Each team stages values into shared memory, barriers, and reads
    the team-mirrored element — needs real cross-thread communication."""
    iv = A.Var("iv")
    nt = A.Var("nt")
    return A.Program("tile", kernels=[A.KernelDef(
        "tile",
        params=[A.Param("inp", PTR), A.Param("out", PTR), A.Param("n", I64)],
        trip_count=A.Arg("n"),
        body=[
            A.Let("nt", A.CastTo(A.OmpCall("num_threads"), I64), I64),
            A.Let("lane", iv % nt, I64),
            A.StoreIdx(A.SharedRef("tile"), A.Var("lane"),
                       A.Index(A.Arg("inp"), iv)),
            A.BarrierStmt(),
            A.Let("mirror", nt - 1 - A.Var("lane"), I64),
            A.StoreIdx(A.Arg("out"), iv,
                       A.Index(A.SharedRef("tile"), A.Var("mirror"))),
        ],
        shared=[A.SharedArray("tile", F64, 32)],
    )])


@pytest.mark.parametrize("mode", list(MODES), ids=list(MODES))
class TestSharedTile:
    def test_cross_thread_communication(self, mode):
        program = tile_reverse_program()
        compiled = compile_program(program, MODES[mode])
        gpu = VirtualGPU(compiled.module)
        n = 64
        data = np.arange(n, dtype=np.float64)
        inp = gpu.alloc_array(data)
        out = gpu.alloc_array(np.zeros(n))
        args = compiled.abi("tile").marshal(gpu, {"inp": inp, "out": out, "n": n})
        gpu.launch("tile", args, 2, 32)
        got = gpu.read_array(out, np.float64, n)
        expected = np.concatenate([data[:32][::-1], data[32:][::-1]])
        assert np.array_equal(got, expected), mode

    def test_user_shared_survives_optimization(self, mode):
        """User shared memory is semantics, never eliminated."""
        program = tile_reverse_program()
        compiled = compile_program(program, MODES[mode])
        from repro.vgpu.resources import shared_memory_usage

        kern = compiled.kernel("tile")
        assert shared_memory_usage(kern, compiled.module) >= 32 * 8

    def test_user_barrier_survives_optimization(self, mode):
        """The staging barrier is required and must not be eliminated."""
        program = tile_reverse_program()
        compiled = compile_program(program, MODES[mode])
        from repro.passes.barrier_elim import _is_any_barrier

        kern = compiled.kernel("tile")
        assert any(_is_any_barrier(i) for i in kern.instructions()), mode
