"""DSL lowering: expressions and statements behave identically in the
OpenMP and CUDA lowerings (differential testing against the interpreter)."""

import numpy as np
import pytest

from repro.ir.types import F64, I32, I64, PTR
from repro.frontend import ast as A
from repro.frontend.driver import CompileOptions, compile_program
from repro.vgpu import VirtualGPU

MODES = [
    CompileOptions(mode="cuda"),
    CompileOptions(mode="openmp", runtime="new"),
    CompileOptions(mode="openmp", runtime="old"),
]
MODE_IDS = ["cuda", "omp-new", "omp-old"]


def run_elementwise(program, host_args_builder, n=64, teams=2, threads=32,
                    options=None):
    """Compile + run a single-kernel program; returns out array."""
    compiled = compile_program(program, options or CompileOptions(mode="cuda"))
    gpu = VirtualGPU(compiled.module)
    host_args = host_args_builder(gpu)
    kernel = program.kernels[0].name
    args = compiled.abi(kernel).marshal(gpu, host_args)
    gpu.launch(kernel, args, teams, threads)
    return gpu.read_array(host_args["out"], np.float64, n)


def simple_program(body, extra_params=(), name="k"):
    return A.Program(name, kernels=[A.KernelDef(
        name,
        params=[A.Param("out", PTR), A.Param("n", I64), *extra_params],
        trip_count=A.Arg("n"),
        body=body,
    )])


@pytest.mark.parametrize("options", MODES, ids=MODE_IDS)
class TestExpressionLowering:
    def check(self, program, expected, options, n=64):
        out = run_elementwise(
            program,
            lambda gpu: {"out": gpu.alloc_array(np.zeros(n)), "n": n},
            n=n, options=options)
        assert np.allclose(out, expected), out[:8]

    def test_arithmetic_chain(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.StoreIdx(A.Arg("out"), iv,
                       A.CastTo((iv * 3 + 7) % 11, F64)),
        ])
        self.check(prog, [(i * 3 + 7) % 11 for i in range(64)], options)

    def test_float_math(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.Let("x", A.CastTo(iv, F64) + 1.0, F64),
            A.StoreIdx(A.Arg("out"), iv,
                       A.MathCall("sqrt", A.Var("x")) * 2.0),
        ])
        self.check(prog, 2.0 * np.sqrt(np.arange(64) + 1.0), options)

    def test_select_expression(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.StoreIdx(A.Arg("out"), iv, A.SelectExpr(
                A.Cmp("<", iv, 32), A.Const(1.0, F64), A.Const(-1.0, F64))),
        ])
        self.check(prog, [1.0] * 32 + [-1.0] * 32, options)

    def test_comparison_and_not(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.StoreIdx(A.Arg("out"), iv, A.SelectExpr(
                A.Not(A.Cmp("==", iv % 2, 0)),
                A.Const(1.0, F64), A.Const(0.0, F64))),
        ])
        self.check(prog, [i % 2 for i in range(64)], options)

    def test_if_else_statement(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.Let("r", A.Const(0.0, F64), F64),
            A.If(A.Cmp(">=", iv, 10),
                 [A.Assign("r", A.CastTo(iv, F64))],
                 [A.Assign("r", A.Const(-5.0, F64))]),
            A.StoreIdx(A.Arg("out"), iv, A.Var("r")),
        ])
        self.check(prog, [-5.0 if i < 10 else float(i) for i in range(64)], options)

    def test_while_loop(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.Let("acc", A.Const(0, I64), I64),
            A.Let("k", A.Const(0, I64), I64),
            A.While(A.Cmp("<", A.Var("k"), iv % 8), [
                A.Assign("acc", A.Var("acc") + A.Var("k")),
                A.Assign("k", A.Var("k") + 1),
            ]),
            A.StoreIdx(A.Arg("out"), iv, A.CastTo(A.Var("acc"), F64)),
        ])
        self.check(prog, [sum(range(i % 8)) for i in range(64)], options)

    def test_for_range(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.Let("acc", A.Const(0, I64), I64),
            A.ForRange("j", 0, 5, [
                A.Assign("acc", A.Var("acc") + A.Var("j") * iv),
            ]),
            A.StoreIdx(A.Arg("out"), iv, A.CastTo(A.Var("acc"), F64)),
        ])
        self.check(prog, [10 * i for i in range(64)], options)

    def test_device_function_call(self, options):
        iv = A.Var("iv")
        df = A.DeviceFunction(
            "twice_plus", [A.Param("a", I64), A.Param("b", I64)], I64,
            [A.ReturnStmt(A.Arg("a") * 2 + A.Arg("b"))])
        prog = A.Program("k", kernels=[A.KernelDef(
            "k", params=[A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), iv,
                             A.CastTo(A.FuncCall("twice_plus", iv, 3), F64))],
        )], device_functions=[df])
        self.check(prog, [2 * i + 3 for i in range(64)], options)

    def test_recursive_device_function(self, options):
        fib = A.DeviceFunction(
            "fib", [A.Param("n", I64)], I64,
            [A.If(A.Cmp("<", A.Arg("n"), 2), [A.ReturnStmt(A.Arg("n"))]),
             A.ReturnStmt(A.FuncCall("fib", A.Arg("n") - 1)
                          + A.FuncCall("fib", A.Arg("n") - 2))])
        iv = A.Var("iv")
        prog = A.Program("k", kernels=[A.KernelDef(
            "k", params=[A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), iv,
                             A.CastTo(A.FuncCall("fib", iv % 10), F64))],
        )], device_functions=[fib])
        ref = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
        self.check(prog, [ref[i % 10] for i in range(64)], options)

    def test_atomic_statement(self, options):
        iv = A.Var("iv")
        prog = simple_program([
            A.Atomic("add", A.Arg("out"), 0, A.Const(1.0, F64)),
            A.StoreIdx(A.Arg("out"), iv + 1, A.Const(0.0, F64)),
        ])
        out = run_elementwise(
            prog, lambda gpu: {"out": gpu.alloc_array(np.zeros(65)), "n": 64},
            n=65, options=options)
        assert out[0] == 64.0

    def test_omp_queries_consistent(self, options):
        """thread_num/num_threads/team_num/num_teams agree across modes
        inside the parallel loop."""
        iv = A.Var("iv")
        prog = simple_program([
            A.StoreIdx(A.Arg("out"), iv,
                       A.CastTo(A.OmpCall("num_threads"), F64) * 1000.0
                       + A.CastTo(A.OmpCall("num_teams"), F64)),
        ])
        out = run_elementwise(
            prog, lambda gpu: {"out": gpu.alloc_array(np.zeros(64)), "n": 64},
            options=options)
        assert np.all(out == 32 * 1000.0 + 2)


class TestStructParams:
    def test_field_reads_match_across_modes(self):
        iv = A.Var("iv")
        conf = A.StructParam("conf", (("scale", F64), ("offset", I64)))
        prog = A.Program("k", kernels=[A.KernelDef(
            "k", params=[A.Param("out", PTR), A.Param("n", I64), conf],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), iv,
                             A.CastTo(iv + A.Field("conf", "offset"), F64)
                             * A.Field("conf", "scale"))],
        )])
        results = {}
        for options, mode_id in zip(MODES, MODE_IDS):
            out = run_elementwise(
                prog,
                lambda gpu: {"out": gpu.alloc_array(np.zeros(64)), "n": 64,
                             "conf": {"scale": 1.5, "offset": 10}},
                options=options)
            results[mode_id] = out
        expected = (np.arange(64) + 10) * 1.5
        for mode_id, out in results.items():
            assert np.allclose(out, expected), mode_id

    def test_openmp_struct_is_by_reference(self):
        """§VII: OpenMP kernels take a pointer, CUDA flattens fields."""
        conf = A.StructParam("conf", (("a", F64),))
        prog = A.Program("k", kernels=[A.KernelDef(
            "k", params=[A.Param("out", PTR), A.Param("n", I64), conf],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"), A.Field("conf", "a"))],
        )])
        omp = compile_program(prog, CompileOptions(runtime="new"))
        cuda = compile_program(prog, CompileOptions(mode="cuda"))
        assert len(omp.kernel("k").args) == 3   # out, n, conf*
        assert len(cuda.kernel("k").args) == 3  # out, n, conf.a (flattened)
        assert str(omp.kernel("k").args[2].type) == "ptr"
        assert str(cuda.kernel("k").args[2].type) == "double"


class TestLoweringErrors:
    def test_unknown_variable(self):
        prog = simple_program([A.StoreIdx(A.Arg("out"), A.Var("iv"), A.Var("ghost"))])
        from repro.frontend.lower_common import LoweringError

        with pytest.raises(LoweringError, match="ghost"):
            compile_program(prog, CompileOptions(mode="cuda"))

    def test_unknown_device_function(self):
        prog = simple_program([
            A.StoreIdx(A.Arg("out"), A.Var("iv"), A.FuncCall("nope"))])
        from repro.frontend.lower_common import LoweringError

        with pytest.raises(LoweringError, match="nope"):
            compile_program(prog, CompileOptions(mode="cuda"))

    def test_assign_to_undeclared(self):
        prog = simple_program([A.Assign("x", A.Const(1, I64))])
        from repro.frontend.lower_common import LoweringError

        with pytest.raises(LoweringError):
            compile_program(prog, CompileOptions(mode="cuda"))
