"""Readonly-parameter analysis and kernel launch ABI marshalling."""

import numpy as np
import pytest

from repro.ir.types import F64, I64, PTR
from repro.frontend import ast as A
from repro.frontend.abi import KernelABI, ScalarArg, StructFieldArg, StructRefArg
from repro.frontend.driver import CompileOptions, compile_program
from repro.frontend.lower_common import compute_readonly_params
from repro.vgpu import VirtualGPU
from tests.conftest import make_kernel


class TestReadonlyAnalysis:
    def test_written_param_not_readonly(self):
        prog = A.Program("p", kernels=[A.KernelDef(
            "k", params=[A.Param("inp", PTR), A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"),
                             A.Index(A.Arg("inp"), A.Var("iv")))],
        )])
        ro = compute_readonly_params(prog)
        assert "inp" in ro["k"]
        assert "out" not in ro["k"]

    def test_atomic_counts_as_write(self):
        prog = A.Program("p", kernels=[A.KernelDef(
            "k", params=[A.Param("acc", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.Atomic("add", A.Arg("acc"), 0, A.Const(1.0, F64))],
        )])
        ro = compute_readonly_params(prog)
        assert "acc" not in ro["k"]

    def test_write_through_callee_propagates(self):
        df = A.DeviceFunction(
            "writer", [A.Param("dst", PTR), A.Param("i", I64)],
            __import__("repro.ir.types", fromlist=["VOID"]).VOID,
            [A.StoreIdx(A.Arg("dst"), A.Arg("i"), A.Const(1.0, F64))])
        prog = A.Program("p", kernels=[A.KernelDef(
            "k", params=[A.Param("buf", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.CallStmt(A.FuncCall("writer", A.Arg("buf"), A.Var("iv")))],
        )], device_functions=[df])
        ro = compute_readonly_params(prog)
        assert "buf" not in ro["k"]
        assert "dst" not in ro["writer"]

    def test_read_only_through_callee_stays_readonly(self):
        df = A.DeviceFunction(
            "reader", [A.Param("src", PTR), A.Param("i", I64)], F64,
            [A.ReturnStmt(A.Index(A.Arg("src"), A.Arg("i")))])
        prog = A.Program("p", kernels=[A.KernelDef(
            "k", params=[A.Param("data", PTR), A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"),
                             A.FuncCall("reader", A.Arg("data"), A.Var("iv")))],
        )], device_functions=[df])
        ro = compute_readonly_params(prog)
        assert "data" in ro["k"]
        assert "src" in ro["reader"]

    def test_recursive_write_propagation_terminates(self):
        from repro.ir.types import VOID

        df = A.DeviceFunction(
            "rec", [A.Param("p", PTR), A.Param("d", I64)], VOID,
            [A.If(A.Cmp(">", A.Arg("d"), 0),
                  [A.CallStmt(A.FuncCall("rec", A.Arg("p"), A.Arg("d") - 1))],
                  [A.StoreIdx(A.Arg("p"), 0, A.Const(1.0, F64))])])
        prog = A.Program("p", kernels=[A.KernelDef(
            "k", params=[A.Param("buf", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.CallStmt(A.FuncCall("rec", A.Arg("buf"), A.Const(3, I64)))],
        )], device_functions=[df])
        ro = compute_readonly_params(prog)
        assert "buf" not in ro["k"]

    def test_attrs_attached_to_ir(self):
        prog = A.Program("p", kernels=[A.KernelDef(
            "k", params=[A.Param("inp", PTR), A.Param("out", PTR), A.Param("n", I64)],
            trip_count=A.Arg("n"),
            body=[A.StoreIdx(A.Arg("out"), A.Var("iv"),
                             A.Index(A.Arg("inp"), A.Var("iv")))],
        )])
        compiled = compile_program(prog, CompileOptions(mode="cuda",
                                                        pipeline=__import__("repro.passes", fromlist=["PipelineConfig"]).PipelineConfig.o0()))
        kern = compiled.kernel("k")
        assert "readonly" in kern.param_attrs.get(0, set())
        assert "noalias" in kern.param_attrs.get(0, set())
        assert "readonly" not in kern.param_attrs.get(1, set())


class TestABIMarshalling:
    def test_scalar_args_in_order(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module)
        abi = KernelABI("kern", [ScalarArg("a", I64), ScalarArg("b", F64)])
        assert abi.marshal(gpu, {"a": 5, "b": 2.5}) == [5, 2.5]

    def test_struct_ref_materializes_device_blob(self, module):
        from repro.ir.types import StructType

        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module)
        sty = StructType("conf", (("x", I64), ("y", F64)))
        abi = KernelABI("kern", [StructRefArg("conf", sty)])
        [ptr] = abi.marshal(gpu, {"conf": {"x": 7, "y": 1.5}})
        assert gpu.read_scalar(ptr, I64) == 7
        assert gpu.read_scalar(ptr + 8, F64) == 1.5

    def test_struct_fields_flattened(self, module):
        func, b = make_kernel(module, params=())
        b.ret()
        gpu = VirtualGPU(module)
        abi = KernelABI("kern", [
            StructFieldArg("conf", "x", I64),
            StructFieldArg("conf", "y", F64),
        ])
        assert abi.marshal(gpu, {"conf": {"x": 7, "y": 1.5}}) == [7, 1.5]
