"""Engine differential testing: the pre-decoded and warp-vectorized
execution engines must be observationally indistinguishable from the
legacy tree-walking interpreter on every proxy app under every build
configuration.

"Indistinguishable" is bit-level: identical KernelProfiles (cycles,
instruction and opcode counts, memory traffic, flops, barriers, static
resources, per-team cycle totals, device output, shared-stack high
water) and identical verified results — serially and with parallel
team simulation (``sim_jobs > 1``).  The legacy engine is the
deterministic reference; any decode-time shortcut or lane-batched
vector kernel that changes an observable number fails here.  (On
old-runtime builds the warp engine transparently falls back to the
decoded scalar path — see ``Interpreter._warp_lockstep_ok`` — so those
cells pin the fallback's equivalence.)
"""

import pytest

from repro.bench.builds import BUILD_ORDER, CUDA, build_options
from repro.bench.harness import APPS, SKIP_CUDA

# Small problem sizes (mirroring tests/apps) keep the full
# app x build x engine sweep affordable; the compile cache shares the
# compilations with the other suites.
SMALL = {
    "xsbench": {"n_lookups": 64, "n_nuclides": 6, "n_gridpoints": 16,
                "n_mats": 3, "nucs_per_mat": 2},
    "rsbench": {"n_lookups": 64, "n_nuclides": 4, "n_poles": 4,
                "n_mats": 3, "nucs_per_mat": 2},
    "gridmini": {"n_sites": 64},
    "testsnap": {"n_atoms": 64, "n_neighbors": 4},
    "minifmm": {"n_targets": 64, "depth": 3, "points_per_leaf": 2,
                "theta_x1000": 500},
}
GEOMETRY = dict(num_teams=4, threads_per_team=32)

PROFILE_FIELDS = (
    "cycles",
    "instructions",
    "opcode_counts",
    "loads_by_space",
    "stores_by_space",
    "flops",
    "barriers",
    "registers",
    "shared_memory_bytes",
    "team_cycles",
    "output",
    "shared_stack_high_water",
)

CELLS = [
    (app, build)
    for app in sorted(APPS)
    for build in BUILD_ORDER
    if not (app in SKIP_CUDA and build == CUDA)
]


def _assert_profiles_identical(reference, candidate, context):
    for field in PROFILE_FIELDS:
        ref, got = getattr(reference, field), getattr(candidate, field)
        assert ref == got, f"{context}: {field} differs ({ref!r} != {got!r})"


@pytest.mark.parametrize("app_name,build", CELLS,
                         ids=[f"{a}-{b}" for a, b in CELLS])
def test_decoded_engine_matches_legacy(app_name, build):
    app = APPS[app_name]
    options = build_options()[build]
    runs = {
        mode: app.run(options, size=SMALL[app_name],
                      engine=engine, sim_jobs=jobs, **GEOMETRY)
        for mode, engine, jobs in (
            ("legacy", "legacy", None),
            ("decoded", "decoded", None),
            ("decoded-parallel", "decoded", 2),
            ("warp", "warp", None),
            ("warp-parallel", "warp", 2),
        )
    }
    for mode, result in runs.items():
        assert result.verified, (
            f"{app_name}/{build}/{mode}: max error {result.max_error}"
        )
    reference = runs["legacy"].profile
    for mode in ("decoded", "decoded-parallel", "warp", "warp-parallel"):
        _assert_profiles_identical(
            reference, runs[mode].profile, f"{app_name}/{build}/{mode}"
        )
