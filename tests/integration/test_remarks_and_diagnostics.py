"""§VII compiler diagnostics: -Rpass(-missed)=openmp-opt analogues."""

import pytest

from repro.apps import minifmm, xsbench
from repro.frontend.driver import CompileOptions
from repro.passes.remarks import RemarkKind


class TestRemarks:
    def test_spmdization_reported_for_generic_kernel(self):
        result = xsbench.run(CompileOptions(runtime="new"))
        remarks = result.compiled.remarks
        spmd = remarks.by_pass("openmp-opt-spmdization")
        assert any(r.kind is RemarkKind.PASSED for r in spmd)
        assert any("SPMD" in r.message for r in spmd)

    def test_globalization_demotion_reported(self):
        result = xsbench.run(CompileOptions(runtime="new"))
        remarks = result.compiled.remarks
        assert remarks.contains("demoted")

    def test_minifmm_missed_optimizations_reported(self):
        """The leftover abstractions must be diagnosed, not silent."""
        result = minifmm.run(CompileOptions(runtime="new"))
        remarks = result.compiled.remarks
        missed = remarks.by_kind(RemarkKind.MISSED)
        assert missed, "expected missed-optimization remarks for MiniFMM"
        text = " ".join(r.message for r in missed)
        assert "recursive" in text or "escapes" in text

    def test_value_prop_folds_reported(self):
        result = xsbench.run(CompileOptions(runtime="new"))
        folds = result.compiled.remarks.by_pass("openmp-opt-value-prop")
        assert folds

    def test_old_runtime_globalization_diagnosed(self):
        from repro.passes import PipelineConfig

        result = xsbench.run(CompileOptions(
            runtime="old", pipeline=PipelineConfig.legacy()))
        assert result.compiled.remarks.contains("legacy data-sharing")
