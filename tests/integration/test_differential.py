"""Differential property testing: random DSL kernels must compute the
same results under every lowering and optimization level.

This exercises the whole stack at once — frontend, runtime, passes,
interpreter — and is the strongest guard against miscompilation: any
pass that changes observable behaviour shows up as a cross-build
mismatch on some random program.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.types import F64, I64, PTR
from repro.frontend import ast as A
from repro.frontend.driver import CompileOptions, compile_program
from repro.passes import PipelineConfig
from repro.vgpu import VirtualGPU

N = 64
TEAMS, THREADS = 2, 32


# ------------------------------------------------------------ expression gen --

def int_expr(depth: int):
    """Expression strategy over i64 values in scope (iv, a, b, k)."""
    leaves = st.one_of(
        st.just(A.Var("iv")),
        st.just(A.Arg("a")),
        st.just(A.Arg("b")),
        st.just(A.Var("k")),
        st.integers(min_value=-7, max_value=13).map(lambda v: A.Const(v, I64)),
    )
    if depth <= 0:
        return leaves

    sub = int_expr(depth - 1)

    def bin_op(args):
        op, lhs, rhs = args
        return A.Bin(op, lhs, rhs)

    def safe_mod(args):
        lhs, divisor = args
        return A.Bin("%", lhs, A.Const(divisor, I64))

    def select(args):
        pred, lhs, rhs, then, els = args
        return A.SelectExpr(A.Cmp(pred, lhs, rhs), then, els)

    return st.one_of(
        leaves,
        st.tuples(st.sampled_from(["+", "-", "*", "&", "|", "^"]), sub, sub).map(bin_op),
        st.tuples(sub, st.integers(min_value=1, max_value=9)).map(safe_mod),
        st.tuples(st.sampled_from(["<", "<=", "==", "!=", ">", ">="]),
                  sub, sub, sub, sub).map(select),
    )


@st.composite
def random_kernel_body(draw):
    stmts = [A.Let("k", A.Const(draw(st.integers(0, 5)), I64), I64)]
    # a few assignments, maybe guarded, maybe in a bounded loop
    for i in range(draw(st.integers(1, 3))):
        expr = draw(int_expr(2))
        kind = draw(st.integers(0, 2))
        if kind == 0:
            stmts.append(A.Assign("k", expr))
        elif kind == 1:
            stmts.append(A.If(
                A.Cmp(draw(st.sampled_from(["<", ">="])), A.Var("iv"),
                      draw(st.integers(0, N))),
                [A.Assign("k", expr)],
                [A.Assign("k", A.Var("k") + 1)],
            ))
        else:
            stmts.append(A.ForRange(f"j{i}", 0, draw(st.integers(1, 4)), [
                A.Assign("k", A.Var("k") + expr * (A.Var(f"j{i}") + 1)),
            ]))
    stmts.append(A.StoreIdx(A.Arg("out"), A.Var("iv"),
                            A.CastTo(A.Var("k"), F64)))
    return stmts


def make_program(body) -> A.Program:
    return A.Program("fuzz", kernels=[A.KernelDef(
        "fuzz",
        params=[A.Param("out", PTR), A.Param("a", I64), A.Param("b", I64),
                A.Param("n", I64)],
        trip_count=A.Arg("n"),
        body=body,
    )])


def run_build(program, options, a, b):
    compiled = compile_program(program, options)
    gpu = VirtualGPU(compiled.module)
    out = gpu.alloc_array(np.zeros(N))
    args = compiled.abi("fuzz").marshal(gpu, {"out": out, "a": a, "b": b, "n": N})
    gpu.launch("fuzz", args, TEAMS, THREADS)
    return gpu.read_array(out, np.float64, N)


BUILDS = {
    "omp-o0": CompileOptions(runtime="new", pipeline=PipelineConfig.o0()),
    "omp-full": CompileOptions(runtime="new"),
    "omp-old": CompileOptions(runtime="old", pipeline=PipelineConfig.legacy()),
    "cuda": CompileOptions(mode="cuda"),
}


class TestDifferential:
    @settings(max_examples=12, deadline=None)
    @given(random_kernel_body(), st.integers(-100, 100), st.integers(-100, 100))
    def test_all_builds_agree(self, body, a, b):
        program = make_program(body)
        results = {
            label: run_build(program, options, a, b)
            for label, options in BUILDS.items()
        }
        reference = results["omp-o0"]
        for label, out in results.items():
            assert np.array_equal(out, reference), (
                f"{label} diverges from O0 reference"
            )

    @settings(max_examples=12, deadline=None)
    @given(random_kernel_body(), st.integers(-100, 100))
    def test_ablation_flags_never_change_results(self, body, a):
        program = make_program(body)
        reference = None
        for flag in ("enable_field_sensitive", "enable_assumed_content",
                     "enable_barrier_elim"):
            config = PipelineConfig()
            setattr(config, flag, False)
            out = run_build(program, CompileOptions(runtime="new", pipeline=config),
                            a, a + 1)
            if reference is None:
                reference = out
            else:
                assert np.array_equal(out, reference), flag
