"""The example scripts must run end-to-end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "near-zero-overhead" in out
        assert "CUDA" in out

    def test_debugging_workflow(self, capsys):
        run_example("debugging_workflow.py")
        out = capsys.readouterr().out
        assert "device trap" in out
        assert "traced" in out

    def test_inspect_optimizations(self, capsys):
        run_example("inspect_optimizations.py")
        out = capsys.readouterr().out
        assert "optimization remarks" in out
        assert "define" in out  # final IR printed

    def test_ablation_study(self, capsys):
        run_example("ablation_study.py", ["minifmm"])
        out = capsys.readouterr().out
        assert "no barrier elim (IV-D)" in out

    def test_ablation_study_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            run_example("ablation_study.py", ["nope"])

    def test_ir_playground(self, capsys):
        run_example("ir_playground.py")
        out = capsys.readouterr().out
        assert "smem=0B" in out
        assert "Fig. 7b/8b" in out

    def test_proxy_app_tour_single_app(self, capsys):
        run_example("proxy_app_tour.py", ["gridmini"])
        out = capsys.readouterr().out
        assert "GFlops" in out
        assert "verified" in out
