"""Determinism: compilation and simulation are reproducible."""

import numpy as np
import pytest

from repro.apps import gridmini, xsbench
from repro.frontend.driver import CompileOptions, compile_program
from repro.ir.printer import print_module


class TestCompilationDeterminism:
    def test_same_program_compiles_to_same_ir(self):
        size = xsbench.default_size()
        a = compile_program(xsbench.build_program(size), CompileOptions(runtime="new"))
        b = compile_program(xsbench.build_program(size), CompileOptions(runtime="new"))
        assert print_module(a.module) == print_module(b.module)

    def test_same_run_same_profile(self):
        r1 = gridmini.run(CompileOptions(runtime="new"))
        r2 = gridmini.run(CompileOptions(runtime="new"))
        assert r1.profile.cycles == r2.profile.cycles
        assert r1.profile.instructions == r2.profile.instructions
        assert r1.profile.registers == r2.profile.registers

    def test_cuda_path_deterministic_too(self):
        r1 = gridmini.run(CompileOptions(mode="cuda"))
        r2 = gridmini.run(CompileOptions(mode="cuda"))
        assert r1.profile.cycles == r2.profile.cycles


class TestCrossBuildNumericalAgreement:
    def test_openmp_and_cuda_bitwise_equal_outputs(self):
        """Same arithmetic order => identical floating point results."""
        import numpy as np
        from repro.vgpu import VirtualGPU

        size = {"n_sites": 64}
        program = gridmini.build_program(size)
        outputs = {}
        for mode, options in (
            ("omp", CompileOptions(runtime="new")),
            ("cuda", CompileOptions(mode="cuda")),
        ):
            compiled = compile_program(program, options)
            gpu = VirtualGPU(compiled.module)
            host_args, _ = gridmini.prepare(gpu, size)
            args = compiled.abi(gridmini.KERNEL).marshal(gpu, host_args)
            gpu.launch(gridmini.KERNEL, args, 2, 32)
            outputs[mode] = gpu.read_array(host_args["out"], np.float64, 64 * 4)
        assert np.array_equal(outputs["omp"], outputs["cuda"])
