"""Fault injection fires identically in both engines.

The acceptance criterion of the robustness work: the same FaultPlan
produces the same exception — type, frozen message, attached device
context — under the legacy tree-walker, the decoded engine, and
``sim_jobs=N``; and a plan that never fires leaves the KernelProfile
bit-identical.  (The compiled-app version of these checks — including
CrashReport comparability — runs in ``tests/bench/test_faults_cli.py``
and ``python -m repro.bench faults``.)
"""

import pytest

from repro.ir import I64, Module, verify_module
from repro.vgpu import BarrierDivergence, InjectedFault, VirtualGPU
from repro.vgpu.config import ENGINES
from tests.conftest import make_kernel

GEOMETRY = dict(num_teams=1, threads_per_team=1)


def _malloc_module():
    """kern(): three device mallocs, then return."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    for _ in range(3):
        b.intrinsic("malloc", [b.i64(16)])
    b.ret()
    verify_module(module)
    return module


def _barrier_module():
    """kern(): one team-wide barrier, then return."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    b.barrier()
    b.ret()
    verify_module(module)
    return module


def _divergent_barrier_module():
    """kern(): thread 0 and thread 1 arrive at *different* aligned barriers."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    left = func.add_block("left")
    right = func.add_block("right")
    done = func.add_block("done")
    tid = b.thread_id()
    b.cond_br(b.icmp("eq", tid, b.i32(0)), left, right)
    b.set_insert_point(left)
    b.aligned_barrier()
    b.br(done)
    b.set_insert_point(right)
    b.aligned_barrier()
    b.br(done)
    b.set_insert_point(done)
    b.ret()
    verify_module(module)
    return module


def _failure(module, engine, faults, sanitize=False, teams=1, threads=1,
             sim_jobs=None):
    gpu = VirtualGPU(module, engine=engine, faults=faults, sanitize=sanitize)
    with pytest.raises(Exception) as excinfo:
        gpu.launch("kern", [], teams, threads, sim_jobs=sim_jobs)
    return excinfo.value


class TestMallocFail:
    def test_fires_at_the_nth_malloc_with_the_frozen_message(self):
        for engine in ENGINES:
            exc = _failure(_malloc_module(), engine, "malloc_fail:n=2")
            assert isinstance(exc, InjectedFault)
            assert str(exc) == ("injected device malloc failure #2 in @kern "
                                "(team 0, thread 0)")

    def test_context_is_identical_across_engines(self):
        contexts = []
        for engine in ENGINES:
            exc = _failure(_malloc_module(), engine, "malloc_fail:n=2")
            assert exc.context is not None
            contexts.append(exc.context.to_dict())
        assert contexts[0] == contexts[1]
        assert contexts[0]["function"] == "kern"

    def test_failed_malloc_is_not_counted(self):
        gpu = VirtualGPU(_malloc_module(), faults="malloc_fail:n=2")
        with pytest.raises(InjectedFault):
            gpu.launch("kern", [], 1, 1)
        # Only the first malloc completed before the injected failure.
        assert gpu.memory.global_seg.brk > 0  # device is still sane


class TestZeroPerturbation:
    def test_armed_plan_that_never_fires_leaves_the_profile_identical(self):
        module = _malloc_module()
        baseline = VirtualGPU(module).launch("kern", [], **GEOMETRY)
        armed = VirtualGPU(module, faults="malloc_fail:n=99").launch(
            "kern", [], **GEOMETRY)
        assert armed.to_dict() == baseline.to_dict()
        assert armed.device_mallocs == 3


class TestBarrierSkip:
    def test_sanitizer_turns_the_hang_into_a_diagnostic(self):
        messages = []
        for engine in ENGINES:
            exc = _failure(_barrier_module(), engine, "barrier_skip:n=1",
                           sanitize=True, threads=2)
            assert isinstance(exc, BarrierDivergence)
            assert exc.team == 0
            messages.append(str(exc))
        assert messages[0] == messages[1]
        assert "finished the kernel while threads" in messages[0]

    def test_sim_jobs_report_the_same_divergence(self):
        serial = _failure(_barrier_module(), "decoded", "barrier_skip:n=1",
                          sanitize=True, teams=2, threads=2)
        parallel = _failure(_barrier_module(), "decoded", "barrier_skip:n=1",
                            sanitize=True, teams=2, threads=2, sim_jobs=2)
        assert type(serial) is type(parallel)
        assert str(serial) == str(parallel)

    def test_without_sanitizer_the_simulator_releases_the_barrier(self):
        # On hardware this hangs; the simulator completes the launch so
        # the sanitize=True diagnostic is strictly additive.
        gpu = VirtualGPU(_barrier_module(), faults="barrier_skip:n=1")
        profile = gpu.launch("kern", [], 1, 2)
        assert profile.cycles > 0


class TestDivergentAlignedBarriers:
    def test_sanitizer_flags_mismatched_aligned_barriers(self):
        messages = []
        for engine in ENGINES:
            gpu = VirtualGPU(_divergent_barrier_module(), engine=engine,
                             sanitize=True)
            with pytest.raises(BarrierDivergence) as excinfo:
                gpu.launch("kern", [], 1, 2)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "different aligned barrier instructions" in messages[0]
