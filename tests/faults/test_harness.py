"""run_guarded: crash reporting and the decoded -> legacy retry.

These tests drive the harness with duck-typed fake devices so every
degradation path (program fault, internal fault, double fault) is
covered without compiling anything; the real-device paths are covered
by ``tests/faults/test_injection.py`` and the faults CLI smoke.
"""

import pytest

from repro.faults import run_guarded
from repro.faults.harness import PROGRAM_FAULTS
from repro.memory.memmodel import MemoryError_
from repro.vgpu.config import ENGINE_DECODED, ENGINE_LEGACY
from repro.vgpu.errors import SimulationError, TrapError

PROFILE = object()  # sentinel: the harness never inspects the profile


class FakeGPU:
    def __init__(self, engine, outcome):
        self.engine = engine
        self.outcome = outcome  # exception to raise, or None for success
        self.fault_plan = None
        self._trace = None
        self.launches = 0

    def run(self, spec):
        self.launches += 1
        if self.outcome is not None:
            raise self.outcome
        from repro.vgpu import LaunchResult

        return LaunchResult(spec=spec, profile=PROFILE, engine=self.engine)


def _factories(outcomes):
    """make_gpu/make_args factories; ``outcomes[engine]`` scripts each
    engine's launch.  Returns (make_gpu, make_args, log of built gpus)."""
    built = []

    def make_gpu(engine):
        gpu = FakeGPU(engine, outcomes.get(engine))
        built.append(gpu)
        return gpu

    def make_args(gpu):
        return [id(gpu)]  # args embed device state: must differ per gpu

    return make_gpu, make_args, built


def _run(outcomes, **kwargs):
    make_gpu, make_args, built = _factories(outcomes)
    outcome = run_guarded(make_gpu, make_args, "kern", 2, 32,
                          save_report=False, **kwargs)
    return outcome, built


class TestCleanRun:
    def test_success_passes_the_profile_through(self):
        outcome, built = _run({}, engine=ENGINE_DECODED)
        assert outcome.ok and outcome.profile is PROFILE
        assert outcome.engine == ENGINE_DECODED and not outcome.retried
        assert outcome.report is None and outcome.report_path is None
        assert len(built) == 1


class TestProgramFaults:
    def test_program_fault_reports_without_retry(self):
        outcome, built = _run({ENGINE_DECODED: TrapError("trap: boom")},
                              engine=ENGINE_DECODED)
        assert not outcome.ok and not outcome.retried
        assert outcome.report.error_type == "TrapError"
        assert "boom" in outcome.report.message
        assert len(built) == 1  # a deterministic program fault: no retry

    def test_memory_errors_count_as_program_faults(self):
        assert MemoryError_ in PROGRAM_FAULTS and SimulationError in PROGRAM_FAULTS
        outcome, built = _run({ENGINE_DECODED: MemoryError_("oob")},
                              engine=ENGINE_DECODED)
        assert not outcome.ok and outcome.report.error_type == "MemoryError_"

    def test_report_is_saved_when_asked(self, tmp_path):
        make_gpu, make_args, _ = _factories({ENGINE_DECODED: TrapError("x")})
        outcome = run_guarded(make_gpu, make_args, "kern", 2, 32,
                              engine=ENGINE_DECODED, save_report=True,
                              report_dir=str(tmp_path))
        assert outcome.report_path is not None
        assert outcome.report_path.startswith(str(tmp_path))


class TestEngineFallback:
    def test_internal_decoded_fault_retries_on_fresh_legacy(self):
        outcome, built = _run({ENGINE_DECODED: RuntimeError("engine bug")},
                              engine=ENGINE_DECODED)
        assert outcome.ok and outcome.retried
        assert outcome.profile is PROFILE and outcome.engine == ENGINE_LEGACY
        # The internal fault is still on record — never silent recovery.
        assert outcome.report.retry == {
            "from_engine": ENGINE_DECODED, "to_engine": ENGINE_LEGACY,
            "error_type": "RuntimeError", "message": "engine bug",
        }
        # Fresh device for the retry, args rebuilt against it.
        assert [g.engine for g in built] == [ENGINE_DECODED, ENGINE_LEGACY]
        assert built[0].launches == 1 and built[1].launches == 1

    def test_internal_legacy_fault_propagates(self):
        with pytest.raises(RuntimeError, match="engine bug"):
            _run({ENGINE_LEGACY: RuntimeError("engine bug")},
                 engine=ENGINE_LEGACY)

    def test_program_fault_on_retry_keeps_the_retry_record(self):
        outcome, built = _run(
            {ENGINE_DECODED: RuntimeError("engine bug"),
             ENGINE_LEGACY: TrapError("trap: boom")},
            engine=ENGINE_DECODED)
        assert not outcome.ok and outcome.retried
        assert outcome.report.error_type == "TrapError"
        assert outcome.report.retry["error_type"] == "RuntimeError"
        assert len(built) == 2

    def test_second_internal_fault_propagates(self):
        with pytest.raises(ZeroDivisionError):
            _run({ENGINE_DECODED: RuntimeError("engine bug"),
                  ENGINE_LEGACY: ZeroDivisionError()},
                 engine=ENGINE_DECODED)
