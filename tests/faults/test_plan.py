"""FaultPlan: the ``REPRO_FAULTS`` grammar and seeded resolution."""

import pytest

from repro.faults import FaultPlan, FaultPlanError
from repro.faults.plan import (
    SITE_BARRIER_SKIP,
    SITE_COMPILE_STALL,
    SITE_MALLOC_FAIL,
    SITE_NAMES,
    SITE_RT_TRAP,
    SITE_SHARED_STACK_EXHAUST,
    SITE_SLOW_REQUEST,
    SITE_WORKER_DIE,
)
from repro.vgpu import LaunchConfig


class TestParsing:
    def test_empty_spec_means_no_plan(self):
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("   ") is None
        assert FaultPlan.parse(None) is None

    def test_single_site_defaults(self):
        plan = FaultPlan.parse("rt_trap")
        assert [s.kind for s in plan.sites] == [SITE_RT_TRAP]
        site = plan.sites[0]
        assert site.n == 1 and site.team is None and site.thread is None
        assert plan.seed is None

    def test_keys_and_seed(self):
        plan = FaultPlan.parse("malloc_fail:n=2:team=1:thread=3;seed=11")
        site = plan.sites[0]
        assert (site.kind, site.n, site.team, site.thread) == (
            SITE_MALLOC_FAIL, 2, 1, 3)
        assert plan.seed == 11

    def test_multiple_sites_and_whitespace(self):
        plan = FaultPlan.parse(" shared_stack_exhaust ; rt_trap : n = 5 ")
        assert [s.kind for s in plan.sites] == [
            SITE_SHARED_STACK_EXHAUST, SITE_RT_TRAP]
        assert plan.sites[1].n == 5

    def test_spec_round_trips_into_to_dict(self):
        plan = FaultPlan.parse("barrier_skip:n=2;seed=3")
        d = plan.to_dict()
        assert d["seed"] == 3
        assert d["sites"] == [
            {"kind": SITE_BARRIER_SKIP, "n": 2, "team": None, "thread": None}]
        assert "barrier_skip" in plan.describe()

    @pytest.mark.parametrize("bad", [
        "frobnicate",                 # unknown site
        "rt_trap;rt_trap",            # duplicate site
        "rt_trap:n=zero",             # non-integer value
        "rt_trap:n=0",                # n is 1-based
        "rt_trap:team=-1",            # negative
        "rt_trap:warp=1",             # unknown key
        "rt_trap:n",                  # missing '='
        "seed=7",                     # seed alone: no sites
        "seed=x",                     # malformed seed
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_every_site_name_parses(self):
        for name in SITE_NAMES:
            assert FaultPlan.parse(name) is not None


class TestResolution:
    LAUNCH = LaunchConfig(4, 32)

    def test_unpinned_without_seed_resolves_to_zero(self):
        plan = FaultPlan.parse("rt_trap:n=1")
        states = [plan.team_state(t, self.LAUNCH) for t in range(4)]
        assert states[0] is not None and states[0].trap_n == 1
        assert states[1] is None and states[2] is None and states[3] is None

    def test_seed_resolution_is_deterministic(self):
        plan_a = FaultPlan.parse("rt_trap:n=5;seed=11")
        plan_b = FaultPlan.parse("rt_trap:n=5;seed=11")
        hits_a = [t for t in range(4) if plan_a.team_state(t, self.LAUNCH)]
        hits_b = [t for t in range(4) if plan_b.team_state(t, self.LAUNCH)]
        assert hits_a == hits_b and len(hits_a) == 1

    def test_pinned_team_wraps_modulo_geometry(self):
        plan = FaultPlan.parse("rt_trap:team=5")  # 5 % 4 == 1
        assert plan.team_state(1, self.LAUNCH) is not None
        assert plan.team_state(0, self.LAUNCH) is None

    def test_exhaust_defaults_to_every_team(self):
        plan = FaultPlan.parse("shared_stack_exhaust")
        for t in range(4):
            state = plan.team_state(t, self.LAUNCH)
            assert state is not None and state.exhaust

    def test_exhaust_pinned_to_one_team(self):
        plan = FaultPlan.parse("shared_stack_exhaust:team=2")
        assert plan.team_state(2, self.LAUNCH).exhaust
        assert plan.team_state(0, self.LAUNCH) is None

    def test_barrier_skip_thread_is_seed_resolved(self):
        plan = FaultPlan.parse("barrier_skip:n=1;seed=3")
        hit = next(t for t in range(4)
                   if plan.team_state(t, self.LAUNCH) is not None)
        state_a = plan.team_state(hit, self.LAUNCH)
        state_b = plan.team_state(hit, self.LAUNCH)
        assert state_a.skip_thread == state_b.skip_thread
        assert 0 <= state_a.skip_thread < self.LAUNCH.threads_per_team

    def test_counters_start_at_zero_every_bind(self):
        """Per-launch counter state is what makes sim_jobs runs identical."""
        plan = FaultPlan.parse("malloc_fail:n=3")
        state = plan.team_state(0, self.LAUNCH)
        assert (state.malloc_seen, state.trap_seen, state.skip_seen) == (0, 0, 0)

class TestServiceSites:
    """Host-side grammar extension: worker_die / compile_stall /
    slow_request sites feed the serving layer's chaos harness, not the
    device interpreter."""

    LAUNCH = LaunchConfig(4, 32)

    def test_service_site_grammar_parses(self):
        plan = FaultPlan.parse(
            "worker_die:n=2;compile_stall:ms=50;slow_request:ms=10;seed=1")
        kinds = {s.kind: s for s in plan.sites}
        assert kinds[SITE_WORKER_DIE].n == 2
        assert kinds[SITE_COMPILE_STALL].ms == 50
        assert kinds[SITE_SLOW_REQUEST].ms == 10
        assert plan.seed == 1

    def test_site_partitioning_helpers(self):
        plan = FaultPlan.parse("worker_die:n=1;malloc_fail:n=2")
        assert [s.kind for s in plan.service_sites()] == [SITE_WORKER_DIE]
        assert [s.kind for s in plan.device_sites()] == [SITE_MALLOC_FAIL]
        assert plan.has_service_sites
        assert not FaultPlan.parse("malloc_fail").has_service_sites

    @pytest.mark.parametrize("bad", [
        "worker_die:team=1",        # device keys on a service site
        "worker_die:thread=0",
        "slow_request:team=2",
        "compile_stall:ms=-5",      # negative duration
        "rt_trap:ms=5",             # service key on a device site
    ])
    def test_key_site_mismatches_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_device_binding_ignores_service_sites(self):
        # A mixed plan still resolves device-side: the service sites
        # must be invisible to team_state.
        plan = FaultPlan.parse("worker_die:n=3;rt_trap:team=1")
        assert plan.team_state(1, self.LAUNCH) is not None
        assert plan.team_state(0, self.LAUNCH) is None
        pure = FaultPlan.parse("worker_die:n=3;slow_request:ms=5")
        assert all(pure.team_state(t, self.LAUNCH) is None for t in range(4))

    def test_to_dict_round_trips_ms(self):
        plan = FaultPlan.parse("compile_stall:ms=25")
        (site,) = plan.to_dict()["sites"]
        assert site == {"kind": SITE_COMPILE_STALL, "n": 1,
                        "team": None, "thread": None, "ms": 25}
        # Device sites keep their historical dict shape: no "ms" key.
        (legacy,) = FaultPlan.parse("rt_trap").to_dict()["sites"]
        assert "ms" not in legacy
