"""CrashReport: construction, comparable view, content-hash saving."""

import json
import os

from repro.faults import CrashReport, FaultPlan
from repro.faults.report import default_report_dir
from repro.vgpu.errors import TrapError, attach_context


class _FakeThread:
    """Duck-typed thread for attach_context (no engine needed)."""

    def __init__(self):
        self.team_id = 1
        self.thread_id = 4
        self.frames = []
        self.stats = None
        self.steps = 17


def _trapped():
    exc = TrapError("trap in @kern (team 1, thread 4): boom")
    return attach_context(exc, _FakeThread(), block_name=None)


class TestConstruction:
    def test_from_exception_captures_context(self):
        report = CrashReport.from_exception(
            _trapped(), kernel="kern", engine="decoded",
            fault_plan=FaultPlan.parse("rt_trap:n=5;seed=11"))
        assert report.error_type == "TrapError"
        assert "boom" in report.message
        assert report.kernel == "kern" and report.engine == "decoded"
        assert report.context["team"] == 1 and report.context["thread"] == 4
        assert report.context["steps"] == 17
        assert report.fault_plan["seed"] == 11

    def test_plain_exception_has_no_context(self):
        report = CrashReport.from_exception(ValueError("engine bug"))
        assert report.error_type == "ValueError"
        assert report.context is None and report.fault_plan is None

    def test_comparable_view_drops_run_varying_fields(self):
        report = CrashReport.from_exception(_trapped(), engine="decoded")
        report.retry = {"from_engine": "decoded", "to_engine": "legacy"}
        report.trace_tail = [{"name": "crash.TrapError"}]
        comparable = report.comparable_dict()
        for key in ("engine", "retry", "trace_tail"):
            assert key not in comparable
        # ...and only those: the rest of the payload survives.
        assert comparable["error_type"] == "TrapError"
        assert comparable["context"]["team"] == 1

    def test_to_json_round_trips(self):
        report = CrashReport.from_exception(_trapped(), kernel="kern")
        assert json.loads(report.to_json()) == report.to_dict()


class TestSave:
    def test_filename_is_a_content_hash(self, tmp_path):
        path = CrashReport.from_exception(_trapped()).save(str(tmp_path))
        name = os.path.basename(path)
        assert name.startswith("crash-") and name.endswith(".json")
        assert len(name) == len("crash-") + 16 + len(".json")
        assert json.load(open(path))["error_type"] == "TrapError"

    def test_same_failure_different_engine_dedups(self, tmp_path):
        a = CrashReport.from_exception(_trapped(), engine="decoded")
        b = CrashReport.from_exception(_trapped(), engine="legacy")
        b.retry = {"from_engine": "decoded", "to_engine": "legacy"}
        assert a.save(str(tmp_path)) == b.save(str(tmp_path))
        assert len(list(tmp_path.iterdir())) == 1

    def test_different_failures_get_different_files(self, tmp_path):
        a = CrashReport.from_exception(_trapped())
        b = CrashReport.from_exception(ValueError("something else"))
        assert a.save(str(tmp_path)) != b.save(str(tmp_path))

    def test_default_dir_lives_under_the_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_report_dir() == str(tmp_path / "crash-reports")
        path = CrashReport.from_exception(_trapped()).save()
        assert path.startswith(str(tmp_path))
