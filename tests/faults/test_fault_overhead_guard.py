"""Zero-overhead guard: a clean launch never touches the fault or
sanitizer machinery.

The engines gate every hook behind ``thread.faults is not None`` and
select the sanitized memory system / slow decode handlers only at
construction time.  These tests booby-trap the machinery and run a
clean launch: if any guarded path is consulted, the booby trap fires
and the test fails — the executable form of the "sanitizer-off
overhead is zero extra cycles" acceptance criterion.
"""

import pytest

from repro.faults.plan import TeamFaultState
from repro.ir import I64, Module, verify_module
from repro.vgpu import VirtualGPU
from repro.vgpu import sanitizer as sanitizer_mod
from repro.vgpu.config import ENGINES
from tests.conftest import make_kernel


def _busy_module():
    """kern(): malloc + barrier + arithmetic — every hook site's path."""
    module = Module("m")
    func, b = make_kernel(module, params=())
    ptr = b.intrinsic("malloc", [b.i64(16)])
    b.store(b.i64(7), ptr)
    b.load(I64, ptr)
    b.barrier()
    b.intrinsic("free", [ptr])
    b.ret()
    verify_module(module)
    return module


@pytest.fixture
def booby_trapped(monkeypatch):
    """Make every fault hook and the sanitizer constructor explode."""

    def boom(*args, **kwargs):
        raise AssertionError("clean launch touched the robustness machinery")

    for hook in ("on_runtime_call", "on_device_malloc", "skip_barrier"):
        monkeypatch.setattr(TeamFaultState, hook, boom)
    monkeypatch.setattr(
        sanitizer_mod.SanitizedMemorySystem, "__init__", boom)


@pytest.mark.parametrize("engine", ENGINES)
def test_clean_launch_never_consults_the_machinery(booby_trapped, engine):
    gpu = VirtualGPU(_busy_module(), engine=engine)
    profile = gpu.launch("kern", [], 2, 4)
    assert profile.device_mallocs == 2 * 4  # the launch really ran


@pytest.mark.parametrize("engine", ENGINES)
def test_fault_run_does_consult_it(engine):
    """Control for the guard: with a plan armed, the hooks *are* live."""
    gpu = VirtualGPU(_busy_module(), engine=engine, faults="malloc_fail:n=1")
    with pytest.raises(Exception):
        gpu.launch("kern", [], 1, 1)


def test_plain_gpu_uses_the_plain_memory_system():
    gpu = VirtualGPU(_busy_module())
    assert type(gpu.memory).__name__ == "MemorySystem"
    assert gpu.fault_plan is None
