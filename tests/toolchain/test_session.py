"""ToolchainSession / RunRequest — the unified run entry point."""

import json

import pytest

from repro.bench.builds import CUDA, NEW_RT, OLD_RT_NIGHTLY
from repro.bench.harness import MatrixResult, run_build_matrix, run_single
from repro.frontend.driver import CompileOptions, Target
from repro.toolchain import RunRequest, ToolchainSession

TINY = {"n_sites": 64}


class TestRunRequest:
    def test_builds_and_options_exclusive(self):
        with pytest.raises(ValueError):
            RunRequest(app="gridmini", builds=[NEW_RT],
                       options=CompileOptions(Target.OPENMP_NEW))

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            ToolchainSession().run(RunRequest(app="nosuchapp"))


class TestSessionRuns:
    def test_matrix_request_matches_wrapper(self):
        session = ToolchainSession()
        via_session = session.run(
            RunRequest(app="gridmini", builds=[NEW_RT, CUDA], size=TINY))
        via_wrapper = run_build_matrix("gridmini", builds=[NEW_RT, CUDA], size=TINY)
        assert isinstance(via_session, MatrixResult)
        assert {b: via_session.cycles(b) for b in via_session.results} == {
            b: via_wrapper.cycles(b) for b in via_wrapper.results}

    def test_single_request_matches_wrapper(self):
        options = CompileOptions(Target.CUDA)
        via_session = ToolchainSession().run_single(
            RunRequest(app="gridmini", options=options, size=TINY))
        via_wrapper = run_single("gridmini", options, size=TINY)
        assert via_session.profile.cycles == via_wrapper.profile.cycles
        assert via_session.verified and via_wrapper.verified

    def test_single_request_labels_cell(self):
        options = CompileOptions(Target.OPENMP_NEW)
        matrix = ToolchainSession().run(
            RunRequest(app="gridmini", options=options, label="mine", size=TINY))
        assert list(matrix.results) == ["mine"]

    def test_testsnap_cuda_still_skipped(self):
        matrix = ToolchainSession().run(RunRequest(
            app="testsnap", size={"n_atoms": 64, "n_neighbors": 2}))
        assert CUDA not in matrix.results

    def test_session_compile_uses_cache(self):
        from repro.apps import gridmini
        from repro.toolchain.cache import CompileCache

        cache = CompileCache(disk_dir=None)
        session = ToolchainSession(cache=cache)
        program = gridmini.build_program(TINY)
        session.compile(program, CompileOptions(Target.OPENMP_NEW))
        session.compile(program, CompileOptions(Target.OPENMP_NEW))
        assert cache.stats.hits == 1


class TestMatrixResultAccessors:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_build_matrix("gridmini", size=TINY)

    def test_speedups_default_baseline(self, matrix):
        speedups = matrix.speedups()
        assert speedups[OLD_RT_NIGHTLY] == 1.0
        assert speedups[NEW_RT] >= 1.0

    def test_relative_performance_alias(self, matrix):
        assert matrix.relative_performance(OLD_RT_NIGHTLY) == matrix.speedups(
            OLD_RT_NIGHTLY)

    def test_resource_table_rows(self, matrix):
        rows = matrix.resource_table()
        assert len(rows) == len(matrix.results)
        for row in rows:
            assert {"app", "build", "kernel_cycles", "time_ms", "registers",
                    "shared_memory_bytes", "barriers", "gflops",
                    "verified"} <= set(row)
            assert row["app"] == "gridmini"
            assert row["kernel_cycles"] == matrix.cycles(row["build"])

    def test_to_json_parses(self, matrix):
        doc = json.loads(matrix.to_json())
        assert doc["app"] == "gridmini"
        assert set(doc["builds"]) == set(matrix.results)
        assert len(doc["rows"]) == len(matrix.results)
