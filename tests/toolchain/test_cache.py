"""Compile-cache behaviour: hits, independence, disk store, LRU."""

import pytest

from repro.apps import gridmini
from repro.frontend.driver import CompileOptions, Target, compile_program
from repro.toolchain.cache import (
    CompileCache,
    configure_compile_cache,
    get_compile_cache,
    reset_compile_cache,
)
from repro.toolchain.fingerprint import module_fingerprint

TINY = {"n_sites": 64}


@pytest.fixture
def program():
    return gridmini.build_program(TINY)


@pytest.fixture
def options():
    return CompileOptions(Target.OPENMP_NEW)


class TestMemoryCache:
    def test_hit_counter_increments_and_pipeline_not_rerun(
        self, program, options, monkeypatch
    ):
        cache = CompileCache(disk_dir=None)
        compiles = {"n": 0}
        import repro.frontend.driver as driver

        real = driver.compile_program_uncached

        def counting(*args, **kwargs):
            compiles["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(driver, "compile_program_uncached", counting)
        first = cache.get_or_compile(program, options)
        assert (cache.stats.hits, cache.stats.misses, compiles["n"]) == (0, 1, 1)
        second = cache.get_or_compile(program, options)
        assert (cache.stats.hits, cache.stats.misses, compiles["n"]) == (1, 1, 1)
        assert module_fingerprint(first.module) == module_fingerprint(second.module)

    def test_hit_returns_independent_copy(self, program, options):
        cache = CompileCache(disk_dir=None)
        first = cache.get_or_compile(program, options)
        pristine = module_fingerprint(first.module)
        # Mutating what the cache handed out must not poison later hits.
        first.module.functions.clear()
        first.abis.clear()
        second = cache.get_or_compile(program, options)
        assert module_fingerprint(second.module) == pristine
        assert second.module.functions
        assert second.abis

    def test_distinct_options_are_distinct_entries(self, program):
        cache = CompileCache(disk_dir=None)
        cache.get_or_compile(program, CompileOptions(Target.OPENMP_NEW))
        cache.get_or_compile(program, CompileOptions(Target.OPENMP_OLD))
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_lru_eviction(self, program):
        cache = CompileCache(max_entries=1, disk_dir=None)
        cache.get_or_compile(program, CompileOptions(Target.OPENMP_NEW))
        cache.get_or_compile(program, CompileOptions(Target.CUDA))
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # The evicted entry recompiles.
        cache.get_or_compile(program, CompileOptions(Target.OPENMP_NEW))
        assert cache.stats.misses == 3


class TestDiskCache:
    def test_cold_process_restores_from_disk(self, program, options, tmp_path):
        warm = CompileCache(disk_dir=tmp_path / "store")
        original = warm.get_or_compile(program, options)
        assert warm.stats.disk_stores == 1
        # A fresh cache (≈ new process) with the same store directory.
        cold = CompileCache(disk_dir=tmp_path / "store")
        restored = cold.get_or_compile(program, options)
        assert cold.stats.misses == 0
        assert cold.stats.hits == 1
        assert cold.stats.disk_hits == 1
        assert module_fingerprint(restored.module) == module_fingerprint(
            original.module
        )

    def test_corrupt_entry_recompiles(self, program, options, tmp_path):
        store = tmp_path / "store"
        warm = CompileCache(disk_dir=store)
        warm.get_or_compile(program, options)
        for path in store.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        cold = CompileCache(disk_dir=store)
        restored = cold.get_or_compile(program, options)
        assert cold.stats.misses == 1
        assert restored.module.functions

    def test_clear_disk(self, program, options, tmp_path):
        store = tmp_path / "store"
        cache = CompileCache(disk_dir=store)
        cache.get_or_compile(program, options)
        assert list(store.glob("*.pkl"))
        cache.clear(disk=True)
        assert not list(store.glob("*.pkl"))
        assert len(cache) == 0


class TestGlobalCache:
    def test_compile_program_routes_through_global_cache(self, program, options):
        cache = configure_compile_cache(CompileCache(disk_dir=None))
        try:
            compile_program(program, options)
            compile_program(program, options)
            assert cache.stats.hits == 1
            assert cache.stats.misses == 1
        finally:
            reset_compile_cache()

    def test_use_cache_false_bypasses(self, program, options):
        cache = configure_compile_cache(CompileCache(disk_dir=None))
        try:
            compile_program(program, options, use_cache=False)
            assert cache.stats.lookups == 0
        finally:
            reset_compile_cache()

    def test_env_kill_switch(self, monkeypatch):
        reset_compile_cache()
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert get_compile_cache() is None
        reset_compile_cache()

    def test_env_cache_dir(self, monkeypatch, tmp_path):
        reset_compile_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        cache = get_compile_cache()
        assert cache is not None
        assert cache.disk_dir == tmp_path / "elsewhere"
        reset_compile_cache()
