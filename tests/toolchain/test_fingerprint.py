"""Content-addressing: cache-key stability and sensitivity."""

from dataclasses import replace

import pytest

from repro.apps import gridmini, xsbench
from repro.frontend.driver import CompileOptions, Target
from repro.ir.printer import print_module
from repro.passes.pass_manager import PipelineConfig
from repro.runtime.config import RuntimeConfig
from repro.toolchain.fingerprint import (
    compile_fingerprint,
    fingerprint_options,
    fingerprint_program,
    module_fingerprint,
)

TINY = {"n_sites": 64}


class TestProgramFingerprint:
    def test_same_program_same_fingerprint(self):
        # Two independently built ASTs of the same app and size.
        a = gridmini.build_program(TINY)
        b = gridmini.build_program(TINY)
        assert a is not b
        assert fingerprint_program(a) == fingerprint_program(b)

    def test_structural_change_changes_fingerprint(self):
        from repro.frontend import ast as A
        from repro.ir.types import F64, I64, PTR

        def saxpy(scale: float) -> A.Program:
            iv = A.Var("iv")
            kernel = A.KernelDef(
                "saxpy",
                params=[A.Param("y", PTR), A.Param("n", I64)],
                trip_count=A.Arg("n"),
                body=[A.StoreIdx(A.Arg("y"), iv,
                                 A.Index(A.Arg("y"), iv) * scale)],
            )
            return A.Program("fp", kernels=[kernel])

        assert fingerprint_program(saxpy(2.0)) == fingerprint_program(saxpy(2.0))
        assert fingerprint_program(saxpy(2.0)) != fingerprint_program(saxpy(3.0))

    def test_different_apps_differ(self):
        a = gridmini.build_program(TINY)
        b = xsbench.build_program(xsbench.default_size())
        assert fingerprint_program(a) != fingerprint_program(b)


class TestOptionsFingerprint:
    def test_equal_options_equal_fingerprint(self):
        a = CompileOptions(Target.OPENMP_NEW)
        b = CompileOptions(Target.OPENMP_NEW)
        assert fingerprint_options(a) == fingerprint_options(b)

    def test_target_flip_changes_fingerprint(self):
        base = fingerprint_options(CompileOptions(Target.OPENMP_NEW))
        assert fingerprint_options(CompileOptions(Target.OPENMP_OLD)) != base
        assert fingerprint_options(CompileOptions(Target.CUDA)) != base

    @pytest.mark.parametrize("flag", [
        "enable_spmdization",
        "enable_globalization_elim",
        "enable_field_sensitive",
        "enable_reach_dom",
        "enable_assumed_content",
        "enable_invariant_prop",
        "enable_aligned_exec",
        "enable_barrier_elim",
        "enable_inlining",
    ])
    def test_any_pipeline_flag_flip_changes_fingerprint(self, flag):
        base = CompileOptions(Target.OPENMP_NEW)
        flipped = PipelineConfig(**{flag: False})
        assert fingerprint_options(base) != fingerprint_options(
            CompileOptions(Target.OPENMP_NEW, pipeline=flipped)
        )

    def test_runtime_config_flip_changes_fingerprint(self):
        base = CompileOptions(Target.OPENMP_NEW)
        tweaked = replace(base, runtime_config=RuntimeConfig(smem_stack_size=2048))
        assert fingerprint_options(base) != fingerprint_options(tweaked)

    def test_oversubscription_changes_fingerprint(self):
        base = CompileOptions(Target.OPENMP_NEW)
        assert fingerprint_options(base) != fingerprint_options(
            base.with_oversubscription()
        )

    def test_verify_flag_changes_fingerprint(self):
        base = CompileOptions(Target.OPENMP_NEW)
        assert fingerprint_options(base) != fingerprint_options(
            replace(base, verify=False)
        )


class TestCompileFingerprint:
    def test_combines_program_and_options(self):
        prog = gridmini.build_program(TINY)
        a = compile_fingerprint(prog, CompileOptions(Target.OPENMP_NEW))
        assert a == compile_fingerprint(
            gridmini.build_program(TINY), CompileOptions(Target.OPENMP_NEW)
        )
        assert a != compile_fingerprint(prog, CompileOptions(Target.CUDA))


class TestModuleFingerprint:
    def test_canonical_print_is_deterministic(self):
        from repro.frontend.driver import compile_program_uncached

        prog = gridmini.build_program(TINY)
        a = compile_program_uncached(prog, CompileOptions(Target.OPENMP_NEW))
        b = compile_program_uncached(prog, CompileOptions(Target.OPENMP_NEW))
        assert print_module(a.module, canonical=True) == print_module(
            b.module, canonical=True
        )
        assert module_fingerprint(a.module) == module_fingerprint(b.module)

    def test_name_hints_do_not_matter_in_canonical_mode(self, module):
        from tests.conftest import make_function
        from repro.ir import I32, IRBuilder, Module

        def build(hint):
            m = Module("m")
            func, b = make_function(m, "f")
            v = b.add(func.args[0], func.args[0], name=hint)
            b.ret(v)
            return m

        a, b_ = build("alpha"), build("beta")
        assert print_module(a, canonical=True) == print_module(b_, canonical=True)
        assert print_module(a) != print_module(b_)
