"""Tier-1 smoke: the bench CLI end-to-end, with parallel jobs.

Runs the real ``python -m repro.bench fig10 --jobs 2`` invocation in a
subprocess whose disk cache points at a tmpdir, so the test exercises
the whole stack (CLI → figures → harness → toolchain → pool workers)
without leaking ``.repro-cache/`` into the repository.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(tmp_path, *args, **env_overrides):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=600,
    )


class TestBenchCLISmoke:
    def test_fig10_with_jobs(self, tmp_path):
        proc = _run_cli(tmp_path, "fig10", "--jobs", "2")
        assert proc.returncode == 0, proc.stderr
        assert "Fig. 10" in proc.stdout
        for app in ("xsbench", "rsbench", "testsnap", "minifmm"):
            assert app in proc.stdout
        # The CUDA column of the Kokkos app stays empty.
        assert "n/a" in proc.stdout
        # The redirected disk cache was populated, not the repository.
        assert list((tmp_path / "cache").glob("*.pkl"))
        assert not (REPO_ROOT / ".repro-cache").exists()

    def test_timings_command(self, tmp_path):
        proc = _run_cli(tmp_path, "timings", "--app", "gridmini")
        assert proc.returncode == 0, proc.stderr
        assert "openmp-opt pipeline timings" in proc.stdout
        assert "fixpoint rounds" in proc.stdout
        assert "compile cache" in proc.stdout

    def test_unknown_figure_rejected_in_process(self):
        from repro.bench.__main__ import main

        assert main(["prog", "unknown-figure"]) == 2

    def test_jobs_flag_parsed_in_process(self, capsys):
        # --jobs must be accepted by every figure command; exercise the
        # parser without paying for a figure run.
        from repro.bench.__main__ import _parser

        args = _parser().parse_args(["fig11", "--jobs", "3"])
        assert args.what == "fig11"
        assert args.jobs == 3
