"""Pipeline observability: per-pass timings attached to compiles."""

import pytest

from repro.apps import gridmini
from repro.frontend.driver import CompileOptions, Target, compile_program_uncached
from repro.passes.pass_manager import PipelineConfig, PipelineStats

TINY = {"n_sites": 64}


@pytest.fixture(scope="module")
def compiled():
    return compile_program_uncached(
        gridmini.build_program(TINY), CompileOptions(Target.OPENMP_NEW)
    )


class TestPipelineStats:
    def test_stats_attached(self, compiled):
        assert isinstance(compiled.stats, PipelineStats)
        assert compiled.stats.timings

    def test_totals_equal_sum_of_entries(self, compiled):
        stats = compiled.stats
        assert stats.total_pass_time_s() == pytest.approx(
            sum(t.wall_time_s for t in stats.timings)
        )
        assert stats.total_instructions_removed() == sum(
            t.instructions_removed for t in stats.timings
        )

    def test_by_pass_totals_equal_sum_of_entries(self, compiled):
        stats = compiled.stats
        aggs = stats.by_pass()
        assert sum(a.runs for a in aggs.values()) == len(stats.timings)
        assert sum(a.wall_time_s for a in aggs.values()) == pytest.approx(
            stats.total_pass_time_s()
        )
        assert sum(a.instructions_removed for a in aggs.values()) == (
            stats.total_instructions_removed()
        )

    def test_pipeline_time_covers_pass_time(self, compiled):
        assert compiled.stats.wall_time_s >= compiled.stats.total_pass_time_s()

    def test_rounds_counted(self, compiled):
        # Both fixpoint loops execute at least one round each.
        assert compiled.stats.rounds >= 2

    def test_instruction_deltas_consistent(self, compiled):
        for t in compiled.stats.timings:
            assert t.instructions_removed == (
                t.instructions_before - t.instructions_after
            )
            assert t.wall_time_s >= 0.0

    def test_phases_labelled(self, compiled):
        phases = {t.phase for t in compiled.stats.timings}
        assert {"prepare", "scalar", "fixpoint", "late-sweep"} <= phases

    def test_o0_pipeline_records_no_passes(self):
        compiled = compile_program_uncached(
            gridmini.build_program(TINY),
            CompileOptions(Target.OPENMP_NEW, pipeline=PipelineConfig.o0()),
        )
        assert compiled.stats is not None
        assert compiled.stats.timings == []

    def test_to_dict_and_table(self, compiled):
        d = compiled.stats.to_dict()
        assert d["pass_runs"] == len(compiled.stats.timings)
        assert d["rounds"] == compiled.stats.rounds
        assert sum(p["runs"] for p in d["per_pass"]) == d["pass_runs"]
        table = compiled.stats.format_table()
        assert "fixpoint rounds" in table

    def test_optimizing_pipeline_removes_instructions(self, compiled):
        # The whole point of the paper: the pipeline shrinks the kernel.
        assert compiled.stats.total_instructions_removed() > 0
