"""The typed Target API and its deprecated stringly surface."""

import warnings
from dataclasses import replace

import pytest

from repro.frontend.driver import CompileOptions, Target


class TestTarget:
    def test_legacy_round_trip(self):
        assert Target.from_legacy("openmp", "new") is Target.OPENMP_NEW
        assert Target.from_legacy("openmp", "old") is Target.OPENMP_OLD
        assert Target.from_legacy("cuda", "new") is Target.CUDA

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            Target.from_legacy("hip", "new")
        with pytest.raises(ValueError, match="runtime"):
            Target.from_legacy("openmp", "future")

    def test_mode_runtime_views(self):
        assert Target.OPENMP_OLD.mode == "openmp"
        assert Target.OPENMP_OLD.runtime == "old"
        assert Target.CUDA.mode == "cuda"
        assert Target.OPENMP_NEW.is_openmp
        assert not Target.CUDA.is_openmp


class TestCompileOptions:
    def test_default_target(self):
        assert CompileOptions().target is Target.OPENMP_NEW

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning):
            opts = CompileOptions(mode="cuda")
        assert opts.target is Target.CUDA
        with pytest.warns(DeprecationWarning):
            opts = CompileOptions(runtime="old")
        assert opts.target is Target.OPENMP_OLD

    def test_legacy_properties_warn(self):
        opts = CompileOptions(Target.OPENMP_OLD)
        with pytest.warns(DeprecationWarning):
            assert opts.mode == "openmp"
        with pytest.warns(DeprecationWarning):
            assert opts.runtime == "old"

    def test_legacy_and_target_equivalent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert CompileOptions(runtime="old") == CompileOptions(Target.OPENMP_OLD)
            assert CompileOptions(mode="cuda") == CompileOptions(Target.CUDA)

    def test_target_plus_legacy_rejected(self):
        with pytest.raises(TypeError):
            CompileOptions(Target.CUDA, mode="cuda")

    def test_replace_preserves_target(self):
        opts = CompileOptions(Target.OPENMP_OLD)
        assert replace(opts, verify=False).target is Target.OPENMP_OLD

    def test_builders_preserve_target(self):
        opts = CompileOptions(Target.OPENMP_NEW).with_oversubscription()
        assert opts.target is Target.OPENMP_NEW
        assert opts.runtime_config.assume_teams_oversubscription
        debug = CompileOptions(Target.OPENMP_OLD).with_debug()
        assert debug.target is Target.OPENMP_OLD
        assert debug.runtime_config.debug_enabled

    def test_frozen(self):
        with pytest.raises(Exception):
            CompileOptions().target = Target.CUDA
