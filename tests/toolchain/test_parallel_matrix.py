"""Parallel build-matrix execution must be bit-identical to serial."""

import pytest

from repro.bench.builds import BUILD_ORDER
from repro.bench.harness import run_build_matrix
from repro.toolchain.service import resolve_jobs

TINY = {"n_sites": 64}


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(2) == 2

    def test_clamped_to_cells(self):
        assert resolve_jobs(8, cells=3) == 3

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1


class TestParallelMatrix:
    def test_parallel_equals_serial(self):
        serial = run_build_matrix("gridmini", size=TINY, jobs=1)
        parallel = run_build_matrix("gridmini", size=TINY, jobs=2)
        assert set(serial.results) == set(parallel.results) == set(BUILD_ORDER)
        for build in BUILD_ORDER:
            assert serial.cycles(build) == parallel.cycles(build), build
            sp, pp = serial.results[build].profile, parallel.results[build].profile
            assert sp.registers == pp.registers
            assert sp.shared_memory_bytes == pp.shared_memory_bytes
            assert sp.barriers == pp.barriers
        assert parallel.all_verified()

    def test_parallel_preserves_build_order(self):
        parallel = run_build_matrix("gridmini", size=TINY, jobs=3)
        assert list(parallel.results) == BUILD_ORDER

    def test_env_jobs_drives_matrix(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        matrix = run_build_matrix("gridmini", builds=BUILD_ORDER[:2], size=TINY)
        assert matrix.all_verified()
        assert list(matrix.results) == BUILD_ORDER[:2]
